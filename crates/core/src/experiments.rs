//! One runner per paper table and figure.
//!
//! Every experiment regenerates the corresponding artifact as a
//! [`Report`]; `crates/bench`'s `repro` binary prints them, and
//! EXPERIMENTS.md records the comparison against the paper.
//!
//! Each experiment is decomposed into a [`SweepPlan`] of independent
//! sweep points (one isolated simulation family per point) so the
//! whole figure set can fan out across OS threads via `repro --jobs N`.
//! Collation is deterministic — results are keyed by sweep index and
//! reduced in canonical order — so the report from a parallel run is
//! bit-identical to a serial one (see [`crate::sweep`]).

use columbia_hpcc::beff::{self, Pattern};
use columbia_hpcc::{dgemm, stream};
use columbia_ins3d::{iteration_seconds, Ins3dConfig};
use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::node::{NodeKind, NodeModel};
use columbia_md::scaling::{weak_scaling_point, TABLE5_CPUS};
use columbia_npb::{gflops_per_cpu, NpbBenchmark, NpbClass, Paradigm};
use columbia_npbmz::bench::{run as mz_run, MzBenchmark, MzOutcome, MzRunConfig};
use columbia_npbmz::MzClass;
use columbia_obs::RecordingTracer;
use columbia_overflowd::{step_times, OverflowConfig};
use columbia_runtime::compiler::{CompilerVersion, KernelClass};
use columbia_runtime::compute::WorkPhase;
use columbia_runtime::exec::{execute_traced, ExecConfig, SpecOp, WorkloadSpec};
use columbia_runtime::pinning::Pinning;
use columbia_runtime::placement::{Placement, PlacementStrategy};
use columbia_simnet::fabric::{CachedFabric, ClusterFabric, MptVersion};
use columbia_simnet::fault::DEFAULT_MULTIPLEX_QUEUE_PENALTY;
use columbia_simnet::program::{ByteRule, Peer, ProgramSet, SpmdOp};
use columbia_simnet::{simulate_on, ConnectionLimit, ConnectionPolicy, FaultPlan, SimError};

use crate::obs_report::hotspot_report;
use crate::report::{gbs, gf, secs, Report};
use crate::sweep::{PointOutput, ResilienceOptions, SweepOutcome, SweepPlan};

/// Every table and figure of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Table 1: node characteristics.
    Table1,
    /// Fig. 5: in-node b_eff latency/bandwidth on the three node types.
    Fig5,
    /// §4.1.1 DGEMM/STREAM numbers.
    DgemmStream,
    /// Fig. 6: NPB per-CPU Gflop/s, MPI and OpenMP, three node types.
    Fig6,
    /// Table 2: INS3D 36 MLP groups × threads, 3700 vs BX2b.
    Table2,
    /// Table 3: OVERFLOW-D comm/exec per step, 3700 vs BX2b.
    Table3,
    /// §4.2: CPU-stride study (STREAM and DGEMM, stride 1/2/4).
    Stride,
    /// Fig. 7: pinning vs no pinning, SP-MZ class C hybrid.
    Fig7,
    /// Fig. 8: four compiler versions on the OpenMP NPBs.
    Fig8,
    /// Table 4: INS3D and OVERFLOW-D under compilers 7.1 vs 8.1.
    Table4,
    /// Fig. 9: BT-MZ process/thread combinations.
    Fig9,
    /// Fig. 10: multinode b_eff, NUMAlink4 vs InfiniBand.
    Fig10,
    /// Fig. 11: NPB-MZ class E across nodes and fabrics.
    Fig11,
    /// Table 5: MD weak scaling to 2,040 CPUs.
    Table5,
    /// Table 6: OVERFLOW-D across nodes, NUMAlink4 vs InfiniBand.
    Table6,
    /// Fault injection: graceful degradation under a seeded fault plan.
    Degraded,
    /// Tracing demo: a faulted multi-node run captured by the
    /// observability layer, rendered as a per-rank hotspot table.
    Trace,
    /// Full-machine scaling demo: one SPMD workload over all twenty
    /// simulated nodes — 10,240 ranks — plus the four-node 2,048-CPU
    /// NUMAlink4 capability subsystem.
    Columbia,
}

impl Experiment {
    /// All experiments in paper order.
    pub const ALL: [Experiment; 18] = [
        Experiment::Table1,
        Experiment::Fig5,
        Experiment::DgemmStream,
        Experiment::Fig6,
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Stride,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Table4,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Table5,
        Experiment::Table6,
        Experiment::Degraded,
        Experiment::Trace,
        Experiment::Columbia,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Fig5 => "fig5",
            Experiment::DgemmStream => "dgemm-stream",
            Experiment::Fig6 => "fig6",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Stride => "stride",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Table4 => "table4",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Table5 => "table5",
            Experiment::Table6 => "table6",
            Experiment::Degraded => "degraded",
            Experiment::Trace => "trace",
            Experiment::Columbia => "columbia",
        }
    }

    /// Parse a CLI name. Accepts a few benchmark-flavoured aliases for
    /// the figures people look for by workload name.
    pub fn parse(s: &str) -> Option<Experiment> {
        match s {
            // BT-MZ process/thread combinations are Fig. 9.
            "bt_mz" | "bt-mz" => return Some(Experiment::Fig9),
            // The §4.1.1 DGEMM/STREAM table is the HPC Challenge slice.
            "hpcc" => return Some(Experiment::DgemmStream),
            _ => {}
        }
        Experiment::ALL.iter().copied().find(|e| e.name() == s)
    }
}

/// Decompose one experiment into its [`SweepPlan`] of independent
/// sweep points.
pub fn plan(exp: Experiment) -> SweepPlan {
    match exp {
        Experiment::Table1 => table1_plan(),
        Experiment::Fig5 => fig5_plan(),
        Experiment::DgemmStream => dgemm_stream_plan(),
        Experiment::Fig6 => fig6_plan(),
        Experiment::Table2 => table2_plan(),
        Experiment::Table3 => table3_plan(),
        Experiment::Stride => stride_plan(),
        Experiment::Fig7 => fig7_plan(),
        Experiment::Fig8 => fig8_plan(),
        Experiment::Table4 => table4_plan(),
        Experiment::Fig9 => fig9_plan(),
        Experiment::Fig10 => fig10_plan(),
        Experiment::Fig11 => fig11_plan(),
        Experiment::Table5 => table5_plan(),
        Experiment::Table6 => table6_plan(),
        Experiment::Degraded => degraded_plan(),
        Experiment::Trace => trace_plan(),
        Experiment::Columbia => columbia_plan(),
    }
}

/// Run one experiment's sweep points across `jobs` worker threads,
/// surfacing any simulation failure as its typed [`SimError`] (the
/// lowest-indexed failing point, under any scheduling).
pub fn try_run_with_jobs(exp: Experiment, jobs: usize) -> Result<Report, SimError> {
    plan(exp).run_with_jobs(jobs)
}

/// Run one experiment serially, surfacing any simulation failure as
/// its typed [`SimError`].
pub fn try_run(exp: Experiment) -> Result<Report, SimError> {
    try_run_with_jobs(exp, 1)
}

/// Run one experiment across `jobs` worker threads; a failed
/// simulation becomes a diagnostic report rather than a panic, so
/// sweeps always produce output. Bit-identical to [`run`] for any
/// `jobs` (the determinism property the test suite asserts).
pub fn run_with_jobs(exp: Experiment, jobs: usize) -> Report {
    try_run_with_jobs(exp, jobs).unwrap_or_else(|err| failure_report(exp.name(), &err))
}

/// Run one experiment serially; a failed simulation becomes a
/// diagnostic report rather than a panic, so sweeps always produce
/// output.
pub fn run(exp: Experiment) -> Report {
    run_with_jobs(exp, 1)
}

/// Run one experiment under a resilience policy (panic isolation,
/// per-point deadlines, bounded retry, checkpoint/resume) — the path
/// behind `repro --resume/--point-deadline/--max-retries`. Checkpoint
/// keys default to the experiment's canonical name, so a resumed run
/// finds the entries an interrupted run of the same experiment left
/// behind. With every point succeeding the report is byte-identical to
/// [`run_with_jobs`]'s.
pub fn run_resilient(exp: Experiment, jobs: usize, mut opts: ResilienceOptions) -> SweepOutcome {
    opts.experiment
        .get_or_insert_with(|| exp.name().to_string());
    plan(exp).run_resilient_with_jobs(jobs, opts)
}

/// Render a [`SimError`] as a report so failures are first-class
/// experiment output (stuck ranks, exhausted connections, …). Public
/// because `repro --spec` degrades a failed spec-built plan the same
/// way (with the spec's file stem as the report id).
pub fn failure_report(name: &str, err: &SimError) -> Report {
    let mut r = Report::new(
        name,
        "simulation failed — structured diagnosis",
        &["diagnostic"],
    );
    for line in err.to_string().lines() {
        r.push_row(vec![line.trim().to_string()]);
    }
    r.note("see DESIGN.md \"Fault model\" for the failure taxonomy");
    r
}

/// The Table 1 point: zipped node-characteristics rows plus the
/// cluster-shape note. Shared by the hard-coded plan and `core::spec`'s
/// `kind = "table1"` so both render byte-identical output by
/// construction.
pub(crate) fn table1_output() -> PointOutput {
    let mut out = PointOutput::default();
    let nodes: Vec<_> = NodeKind::ALL
        .iter()
        .map(|&k| NodeModel::new(k).table1_row())
        .collect();
    for ((a, b), c) in nodes[0].iter().zip(&nodes[1]).zip(&nodes[2]) {
        out.rows
            .push(vec![a.0.to_string(), a.1.clone(), b.1.clone(), c.1.clone()]);
    }
    let c = ClusterConfig::columbia();
    out.with_note(format!(
        "cluster: {} nodes, {} CPUs total; pure MPI fully usable on up to {} nodes",
        c.nodes.len(),
        c.total_cpus(),
        (2..8)
            .take_while(|&n| c.pure_mpi_fully_usable(n))
            .last()
            .unwrap_or(1)
    ))
}

fn table1_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 1",
        "Characteristics of the two types of Altix nodes used in Columbia",
        &["Characteristic", "3700", "BX2a", "BX2b"],
    );
    plan.point_ok(table1_output);
    plan
}

fn fig5_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 5",
        "b_eff bandwidth and latency on three node types (in-node)",
        &["pattern", "node", "CPUs", "latency", "bandwidth GB/s"],
    );
    let cpus = [4u32, 16, 64, 256, 512];
    for kind in NodeKind::ALL {
        plan.point_ok(move || {
            let sweep = beff::in_node_sweep(kind, &cpus);
            let mut out = PointOutput::default();
            for pattern in Pattern::ALL {
                for &n in &cpus {
                    let p = sweep.get(pattern, n).unwrap();
                    out.rows.push(vec![
                        pattern.name().to_string(),
                        kind.name().to_string(),
                        n.to_string(),
                        secs(p.latency),
                        gbs(p.bandwidth),
                    ]);
                }
            }
            out
        });
    }
    plan.note("paper: random-ring latency separates the BX2 from the 3700 at high CPU counts");
    plan
}

fn dgemm_stream_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "§4.1.1",
        "DGEMM and STREAM on the three node types",
        &["benchmark", "node", "per-CPU result"],
    );
    for kind in NodeKind::ALL {
        plan.point_ok(move || {
            let d = dgemm::simulate(kind, 1);
            PointOutput::row(vec![
                "DGEMM".into(),
                kind.name().into(),
                format!("{} Gflop/s", gf(d.gflops_per_cpu)),
            ])
        });
    }
    for kind in NodeKind::ALL {
        plan.point_ok(move || {
            let s = stream::simulate(kind, 512, 1);
            PointOutput::row(vec![
                "STREAM triad (dense)".into(),
                kind.name().into(),
                format!("{} GB/s", gbs(s.triad())),
            ])
        });
    }
    plan.note(
        "paper: DGEMM 5.75 Gflop/s on BX2b, +6% over 3700/BX2a; STREAM ~2 GB/s dense, 3700 +1%",
    );
    plan
}

fn fig6_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 6",
        "NPB class B per-CPU Gflop/s on three node types",
        &["bench", "paradigm", "node", "CPUs", "Gflop/s per CPU"],
    );
    let counts = [1u32, 16, 64, 256];
    for bench in NpbBenchmark::ALL {
        for paradigm in Paradigm::ALL {
            for kind in NodeKind::ALL {
                plan.point(move || {
                    let mut out = PointOutput::default();
                    for &n in &counts {
                        let g = gflops_per_cpu(
                            bench,
                            NpbClass::B,
                            kind,
                            paradigm,
                            n,
                            CompilerVersion::V7_1,
                        )?;
                        out.rows.push(vec![
                            bench.name().into(),
                            paradigm.name().into(),
                            kind.name().into(),
                            n.to_string(),
                            gf(g),
                        ]);
                    }
                    Ok(out)
                });
            }
        }
    }
    plan.note("paper anchors: FT(MPI) ~2x on BX2 at 256; MG/BT jump ~50% on BX2b at 64; OpenMP gap up to 2x at 128 threads");
    plan
}

fn table2_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 2",
        "INS3D seconds per physical time step, 36 MLP groups",
        &["CPUs (groups x threads)", "3700", "BX2b"],
    );
    // The 1x1 baseline row, then 36 groups with the paper's thread set.
    plan.point_ok(|| {
        let base3700 = iteration_seconds(&Ins3dConfig {
            kind: NodeKind::Altix3700,
            groups: 1,
            threads: 1,
            compiler: CompilerVersion::V7_1,
        });
        let base_bx2b = iteration_seconds(&Ins3dConfig {
            kind: NodeKind::Bx2b,
            groups: 1,
            threads: 1,
            compiler: CompilerVersion::V7_1,
        });
        PointOutput::row(vec!["1 (1x1)".into(), secs(base3700), secs(base_bx2b)])
    });
    for threads in [1usize, 2, 4, 8, 12, 14] {
        plan.point_ok(move || {
            let t3 = iteration_seconds(&Ins3dConfig::table2(NodeKind::Altix3700, threads));
            let tb = iteration_seconds(&Ins3dConfig::table2(NodeKind::Bx2b, threads));
            PointOutput::row(vec![
                format!("{} (36x{})", 36 * threads, threads),
                secs(t3),
                secs(tb),
            ])
        });
    }
    plan.note("paper: BX2b ~50% faster; scaling good to 8 threads, decaying beyond");
    plan
}

fn table3_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 3",
        "OVERFLOW-D per-step times, 3700 vs BX2b (NUMAlink4, in-node)",
        &["CPUs", "3700 comm", "3700 exec", "BX2b comm", "BX2b exec"],
    );
    for cpus in [32usize, 64, 128, 256, 508] {
        plan.point(move || {
            let a = step_times(&OverflowConfig::table3(NodeKind::Altix3700, cpus))?;
            let b = step_times(&OverflowConfig::table3(NodeKind::Bx2b, cpus))?;
            Ok(PointOutput::row(vec![
                cpus.to_string(),
                secs(a.comm),
                secs(a.exec),
                secs(b.comm),
                secs(b.exec),
            ]))
        });
    }
    plan.note(
        "paper: BX2b ~2x faster on average; 3700 comm/exec climbs from ~0.3 (256) past 0.5 (508)",
    );
    plan
}

fn stride_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "§4.2",
        "CPU stride study: per-CPU STREAM triad and DGEMM",
        &["benchmark", "stride", "per-CPU result"],
    );
    for s in [1u32, 2, 4] {
        plan.point_ok(move || {
            let st = stream::simulate(NodeKind::Altix3700, 128, s);
            PointOutput::row(vec![
                "STREAM triad".into(),
                s.to_string(),
                format!("{} GB/s", gbs(st.triad())),
            ])
        });
    }
    for s in [1u32, 2, 4] {
        plan.point_ok(move || {
            let d = dgemm::simulate(NodeKind::Altix3700, s);
            PointOutput::row(vec![
                "DGEMM".into(),
                s.to_string(),
                format!("{} Gflop/s", gf(d.gflops_per_cpu)),
            ])
        });
    }
    plan.note("paper: triad 1.9x at stride 2 (bus unshared); DGEMM moves <0.5%");
    plan
}

fn fig7_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 7",
        "Pinning vs no pinning, SP-MZ class C on BX2b",
        &["CPUs", "threads/proc", "pinned s/step", "unpinned s/step"],
    );
    for (procs, threads) in [(64usize, 1usize), (32, 2), (16, 8), (8, 16), (4, 32)] {
        plan.point(move || {
            let mut cfg = MzRunConfig::new(MzBenchmark::SpMz, MzClass::C, procs, threads);
            let tp = mz_run(&cfg)?.seconds_per_step;
            cfg.pinning = Pinning::Unpinned;
            let tu = mz_run(&cfg)?.seconds_per_step;
            Ok(PointOutput::row(vec![
                (procs * threads).to_string(),
                threads.to_string(),
                secs(tp),
                secs(tu),
            ]))
        });
    }
    plan.note(
        "paper: pinning matters most for many threads/proc; pure process mode barely affected",
    );
    plan
}

fn fig8_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 8",
        "Compiler versions on the OpenMP NPBs (BX2b, class B)",
        &["bench", "threads", "7.1", "8.0", "8.1", "9.0b"],
    );
    for bench in NpbBenchmark::ALL {
        for threads in [16u32, 64] {
            plan.point(move || {
                let mut g = Vec::new();
                for &v in CompilerVersion::ALL.iter() {
                    g.push(gf(gflops_per_cpu(
                        bench,
                        NpbClass::B,
                        NodeKind::Bx2b,
                        Paradigm::OpenMp,
                        threads,
                        v,
                    )?));
                }
                Ok(PointOutput::row(vec![
                    bench.name().into(),
                    threads.to_string(),
                    g[0].clone(),
                    g[1].clone(),
                    g[2].clone(),
                    g[3].clone(),
                ]))
            });
        }
    }
    plan.note("paper: 8.0 worst in most cases; 9.0b best on FT; MG crossover at 32 threads; no overall winner");
    plan
}

fn table4_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 4",
        "INS3D and OVERFLOW-D under Intel Fortran 7.1 vs 8.1",
        &["application", "CPUs", "7.1", "8.1"],
    );
    for threads in [4usize, 8] {
        plan.point_ok(move || {
            let t71 = iteration_seconds(&Ins3dConfig {
                compiler: CompilerVersion::V7_1,
                ..Ins3dConfig::table2(NodeKind::Bx2b, threads)
            });
            let t81 = iteration_seconds(&Ins3dConfig {
                compiler: CompilerVersion::V8_1,
                ..Ins3dConfig::table2(NodeKind::Bx2b, threads)
            });
            PointOutput::row(vec![
                "INS3D (s/step)".into(),
                (36 * threads).to_string(),
                secs(t71),
                secs(t81),
            ])
        });
    }
    for procs in [32usize, 128] {
        plan.point(move || {
            let mk = |compiler| -> Result<f64, SimError> {
                Ok(step_times(&OverflowConfig {
                    compiler,
                    ..OverflowConfig::table3(NodeKind::Altix3700, procs)
                })?
                .exec)
            };
            Ok(PointOutput::row(vec![
                "OVERFLOW-D (s/step)".into(),
                procs.to_string(),
                secs(mk(CompilerVersion::V7_1)?),
                secs(mk(CompilerVersion::V8_1)?),
            ]))
        });
    }
    plan.note("paper: INS3D negligible difference; OVERFLOW-D 7.1 wins 20-40% under 64 CPUs, identical above");
    plan
}

fn fig9_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 9",
        "BT-MZ class C under process/thread combinations (BX2b)",
        &["procs", "threads", "CPUs", "total Gflop/s"],
    );
    for (procs, threads) in [
        (16usize, 1usize),
        (64, 1),
        (256, 1),
        (16, 4),
        (64, 4),
        (16, 16),
        (16, 2),
        (16, 8),
    ] {
        if procs * threads > 512 {
            continue;
        }
        plan.point(move || {
            let out = mz_run(&MzRunConfig::new(
                MzBenchmark::BtMz,
                MzClass::C,
                procs,
                threads,
            ))?;
            Ok(PointOutput::row(vec![
                procs.to_string(),
                threads.to_string(),
                (procs * threads).to_string(),
                gf(out.total_gflops),
            ]))
        });
    }
    plan.note("paper: MPI scales almost linearly until load imbalance; OpenMP drops quickly beyond 2 threads");
    plan
}

fn fig10_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 10",
        "Multinode b_eff: NUMAlink4 vs InfiniBand (BX2b nodes)",
        &[
            "pattern",
            "fabric",
            "nodes",
            "CPUs",
            "latency",
            "bandwidth GB/s",
        ],
    );
    let counts = [256u32, 1024, 2048];
    for (nodes, inter) in [
        (2u32, InterNodeFabric::NumaLink4),
        (4, InterNodeFabric::NumaLink4),
        (2, InterNodeFabric::InfiniBand),
        (4, InterNodeFabric::InfiniBand),
    ] {
        plan.point_ok(move || {
            let sweep = beff::multi_node_sweep(nodes, inter, MptVersion::Beta, &counts);
            let mut out = PointOutput::default();
            for pattern in Pattern::ALL {
                for &n in &counts {
                    let p = sweep.get(pattern, n).unwrap();
                    out.rows.push(vec![
                        pattern.name().into(),
                        inter.name().into(),
                        nodes.to_string(),
                        n.to_string(),
                        secs(p.latency),
                        gbs(p.bandwidth),
                    ]);
                }
            }
            out
        });
    }
    plan.note("paper: NL4 clearly better; IB random ring shows severe scalability problems");
    plan
}

fn fig11_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Fig. 11",
        "NPB-MZ class E across nodes and fabrics",
        &["bench", "fabric", "MPT", "procs x threads", "total Gflop/s"],
    );
    let combos: [(usize, usize); 3] = [(256, 1), (512, 1), (512, 2)];
    for bench in [MzBenchmark::BtMz, MzBenchmark::SpMz] {
        for (inter, mpt) in [
            (InterNodeFabric::NumaLink4, MptVersion::Beta),
            (InterNodeFabric::InfiniBand, MptVersion::Released),
            (InterNodeFabric::InfiniBand, MptVersion::Beta),
        ] {
            for (procs, threads) in combos {
                plan.point(move || {
                    let mut cfg = MzRunConfig::new(bench, MzClass::E, procs, threads);
                    cfg.nodes = ((procs * threads) as u32).div_ceil(512).max(2);
                    cfg.inter = inter;
                    cfg.mpt = mpt;
                    let out = mz_run(&cfg)?;
                    Ok(PointOutput::row(vec![
                        bench.name().into(),
                        inter.name().into(),
                        if mpt == MptVersion::Beta {
                            "beta"
                        } else {
                            "released"
                        }
                        .into(),
                        format!("{procs}x{threads}"),
                        gf(out.total_gflops),
                    ]))
                });
            }
        }
    }
    plan.note("paper: BT-MZ near-linear, IB ~7% worse; SP-MZ 40% slower on IB with released MPT at 256, beta closes the gap");
    plan
}

fn table5_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 5",
        "MD weak scaling, 64,000 atoms per CPU, 100 steps",
        &["CPUs", "atoms", "s/step", "comm s/step", "efficiency"],
    );
    for &cpus in &TABLE5_CPUS {
        plan.point(move || {
            // The 1-CPU efficiency baseline is a single-rank run —
            // cheap enough to recompute per point, keeping points
            // independent.
            let base = weak_scaling_point(1)?;
            let p = weak_scaling_point(cpus)?;
            Ok(PointOutput::row(vec![
                cpus.to_string(),
                p.atoms.to_string(),
                secs(p.seconds_per_step),
                secs(p.comm_per_step),
                format!("{:.1}%", 100.0 * p.efficiency_vs(&base)),
            ]))
        });
    }
    plan.note("paper: almost perfect scalability to 2040 CPUs; communication insignificant");
    plan
}

fn table6_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Table 6",
        "OVERFLOW-D across BX2b nodes: NUMAlink4 vs InfiniBand",
        &[
            "nodes", "CPUs", "NL4 comm", "NL4 exec", "IB comm", "IB exec",
        ],
    );
    for (nodes, procs) in [(2u32, 256usize), (2, 508), (4, 1016)] {
        if procs > 1679 {
            continue;
        }
        plan.point(move || {
            let mk = |inter| {
                step_times(&OverflowConfig {
                    kind: NodeKind::Bx2b,
                    procs,
                    threads: 1,
                    nodes,
                    inter,
                    compiler: CompilerVersion::V8_1,
                })
            };
            let nl = mk(InterNodeFabric::NumaLink4)?;
            let ib = mk(InterNodeFabric::InfiniBand)?;
            Ok(PointOutput::row(vec![
                nodes.to_string(),
                procs.to_string(),
                secs(nl.comm),
                secs(nl.exec),
                secs(ib.comm),
                secs(ib.exec),
            ]))
        });
    }
    plan.note("paper: NL4 totals ~10% better; reported comm reverses (IB lower)");
    plan
}

/// The fault-injection seed used by the `degraded` experiment: results
/// are deterministic, so the report is reproducible run to run.
pub const DEGRADED_SEED: u64 = 42;

/// The `degraded` experiment's shared run shape: BT-MZ class C, 256x4
/// hybrid filling two BX2b nodes over InfiniBand (128 processes per
/// node), under the given fault plan.
fn degraded_cfg(faults: FaultPlan) -> MzRunConfig {
    let mut c = MzRunConfig::new(MzBenchmark::BtMz, MzClass::C, 256, 4);
    c.nodes = 2;
    c.inter = InterNodeFabric::InfiniBand;
    c.faults = faults;
    c
}

/// One scenario row of the degraded report. The slowdown column (index
/// 2) is left blank — it needs the healthy baseline, so the sweep's
/// collation fills it from the per-point `values[0]` (s/step).
fn degraded_row(label: String, out: &MzOutcome) -> PointOutput {
    PointOutput::row(vec![
        label,
        secs(out.seconds_per_step),
        String::new(),
        out.faults.dropped_messages.to_string(),
        secs(out.faults.retransmit_delay),
        out.faults.multiplexed_messages.to_string(),
    ])
    .with_value(out.seconds_per_step)
}

/// Graceful degradation: the shared run shape re-run under a ladder of
/// seeded fault plans, one independent sweep point per scenario.
fn degraded_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Degraded",
        "BT-MZ class C, 256x4 over 2 BX2b nodes (InfiniBand) under seeded faults",
        &[
            "scenario",
            "s/step",
            "slowdown",
            "dropped",
            "retransmit s",
            "muxed msgs",
        ],
    );
    // Drops surface at the MPT level here, not the hardware level, so
    // the first retransmit waits a software timeout, not IB's 100 µs.
    fn drops(prob: f64) -> FaultPlan {
        let mut plan = FaultPlan::with_drops(DEGRADED_SEED, prob);
        plan.retransmit.timeout = 5.0e-3;
        plan
    }
    plan.point(|| {
        let healthy = mz_run(&degraded_cfg(FaultPlan::none()))?;
        Ok(degraded_row("healthy".into(), &healthy))
    });
    for drop_prob in [0.02, 0.05, 0.10, 0.20] {
        plan.point(move || {
            let out = mz_run(&degraded_cfg(drops(drop_prob)))?;
            Ok(degraded_row(
                format!("drop {:.0}%", 100.0 * drop_prob),
                &out,
            ))
        });
    }
    plan.point(|| {
        let out = mz_run(&degraded_cfg(FaultPlan::none().degrade_link(
            NodeId(0),
            NodeId(1),
            4.0,
            0.25,
        )))?;
        Ok(degraded_row("degraded link (4x lat, 1/4 bw)".into(), &out))
    });
    plan.point(|| {
        let out = mz_run(&degraded_cfg(
            FaultPlan::none().fail_link(NodeId(0), NodeId(1)),
        ))?;
        Ok(degraded_row("failed link (rerouted)".into(), &out))
    });
    // Node 0 holds the heaviest zones (bin_pack seeds rank 0 with the
    // largest), so slowing it drags the whole barrier-synced run.
    plan.point(|| {
        let out = mz_run(&degraded_cfg(FaultPlan::none().slow_node(NodeId(0), 2.0)))?;
        Ok(degraded_row("slow node 0 (2x compute)".into(), &out))
    });
    // A budget half of the p^2(n-1) = 128^2 connections each node
    // needs, with the Multiplex fallback: the run completes, paying a
    // queuing penalty per inter-node message instead of failing.
    const TIGHT: ConnectionLimit = ConnectionLimit {
        cards_per_node: 1,
        connections_per_card: 8192,
        policy: ConnectionPolicy::Multiplex {
            queue_penalty: DEFAULT_MULTIPLEX_QUEUE_PENALTY,
        },
    };
    plan.point(|| {
        let out = mz_run(&degraded_cfg(
            FaultPlan::none().with_connection_limit(TIGHT),
        ))?;
        Ok(degraded_row(
            "connections halved (multiplexed)".into(),
            &out,
        ))
    });
    plan.point(|| {
        let mut out = PointOutput::default();
        if let Err(err) = mz_run(&degraded_cfg(FaultPlan::none().with_connection_limit(
            ConnectionLimit {
                policy: ConnectionPolicy::Fail,
                ..TIGHT
            },
        ))) {
            out.notes
                .push(format!("same budget under a fail-fast policy: {err}"));
        }
        Ok(out)
    });
    // The slowdown column divides every scenario's s/step by the
    // healthy baseline (point 0) — a cross-point reduction, so it lives
    // in the collation, not the points.
    plan.collate_with(|report, outputs| {
        let healthy = outputs
            .first()
            .and_then(|o| o.values.first())
            .copied()
            .unwrap_or(f64::NAN);
        for o in &outputs {
            for row in &o.rows {
                let mut row = row.clone();
                if let Some(v) = o.values.first() {
                    row[2] = format!("{:.3}x", v / healthy);
                }
                report.push_row(row);
            }
        }
        for o in outputs {
            for note in o.notes {
                report.note(note);
            }
        }
    });
    plan.note("connection budget follows the paper's section 2 formula: p^2(n-1) connections per node, 8 cards x 64K each on the real machine");
    plan.note("drop/retransmit ladder mirrors Fig. 11's released-MPT slowdown on InfiniBand; the degraded-link row is the same mechanism as the section 4.6.4 I/O-induced anomaly");
    plan
}

/// Observability demo: a deliberately imbalanced halo-exchange workload
/// (16 ranks split across two BX2b nodes over InfiniBand, seeded drops)
/// captured by a [`RecordingTracer`] and rendered as the top-N hotspot
/// table. `repro --exp trace --trace t.json --metrics m.json` exports
/// the same run as a Perfetto-loadable timeline and counter dump.
/// Parameters of one traced-exchange demo run — the `trace`
/// experiment's shape, exposed so `core::spec`'s `kind = "trace"` can
/// drive the identical code path with spec-supplied values.
#[derive(Debug, Clone)]
pub(crate) struct TraceParams {
    /// Report id (feeds the hotspot table header).
    pub id: String,
    /// Report title.
    pub title: String,
    /// SPMD ranks.
    pub ranks: usize,
    /// Node count (BX2b, InfiniBand between them).
    pub nodes: u32,
    /// Seeded per-message drop probability.
    pub drop_prob: f64,
    /// Fault seed.
    pub seed: u64,
    /// Iterations of the work/exchange/allreduce loop.
    pub iters: u32,
    /// Hotspot rows to keep (top-N by wait time).
    pub top: usize,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            id: "Trace".into(),
            title: "hotspots of an imbalanced 16-rank exchange over 2 nodes (InfiniBand, 5% drops)"
                .into(),
            ranks: 16,
            nodes: 2,
            drop_prob: 0.05,
            seed: DEGRADED_SEED,
            iters: 3,
            top: 8,
        }
    }
}

/// One traced-exchange point: build the skewed workload, run it under a
/// [`RecordingTracer`], and render the top-N hotspot table.
pub(crate) fn trace_output(p: &TraceParams) -> Result<PointOutput, SimError> {
    let n = p.ranks;
    let cluster = ClusterConfig::uniform(NodeKind::Bx2b, p.nodes);
    let nodes: Vec<NodeId> = (0..p.nodes).map(NodeId).collect();
    // Cap each node at ranks/nodes so the exchange partners
    // (r <-> r + ranks/2) straddle the inter-node link.
    let cap = n.div_ceil(p.nodes as usize) as u32;
    let placement = Placement::new(&cluster, &nodes, n, 1, PlacementStrategy::DenseCapped(cap));
    let mut spec = WorkloadSpec::with_ranks(n);
    for (r, prog) in spec.ranks.iter_mut().enumerate() {
        let partner = (r + n / 2) % n;
        for _iter in 0..p.iters {
            // Linear compute skew: the last rank does ~2x rank 0's work,
            // so the early ranks pile up wait time at the collectives.
            prog.push(SpecOp::Work(WorkPhase::new(
                1.0e9 * (1.0 + r as f64 / (n - 1) as f64),
                1.0e8,
                1 << 20,
                0.2,
                KernelClass::BlockSolver,
            )));
            prog.push(SpecOp::Exchange {
                with: partner,
                bytes: 1 << 20,
                tag: r.min(partner) as u64,
            });
            prog.push(SpecOp::AllReduce { bytes: 64 });
        }
    }
    // Seeded drops (software-level timeout, as in the degraded
    // experiment) so the trace shows retransmit backoff on the net
    // track, deterministically.
    let mut faults = FaultPlan::with_drops(p.seed, p.drop_prob);
    faults.retransmit.timeout = 5.0e-3;
    let cfg = ExecConfig {
        cluster,
        nodes,
        inter: InterNodeFabric::InfiniBand,
        mpt: MptVersion::Beta,
        placement,
        compiler: CompilerVersion::V7_1,
        pinning: Pinning::Pinned,
        faults,
    };
    let mut tracer = RecordingTracer::new();
    execute_traced(&spec, &cfg, &mut tracer)?;
    let profile = tracer.profile();
    let metrics = tracer.metrics.clone();
    // This experiment drives its own tracer (bypassing `execute`'s
    // sink check), so deposit the bundle for `--trace` exports itself.
    if columbia_obs::sink::is_active() {
        columbia_obs::sink::record(tracer.into_bundle(format!(
            "trace demo: {} ranks over {} nodes (IB)",
            p.ranks, p.nodes
        )));
    }
    let r = hotspot_report(&p.id, &p.title, &profile, &metrics, p.top);
    Ok(PointOutput {
        rows: r.rows,
        notes: r.notes,
        values: Vec::new(),
    })
}

fn trace_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Trace",
        "hotspots of an imbalanced 16-rank exchange over 2 nodes (InfiniBand, 5% drops)",
        &["rank", "compute", "comm", "wait", "total", "wait %"],
    );
    plan.point(|| trace_output(&TraceParams::default()));
    plan.note(
        "re-run as `repro --exp trace --trace t.json --metrics m.json` for the Perfetto timeline",
    );
    plan
}

/// The SPMD template both Columbia points run: ring rounds with a
/// node-pairing exchange and a small allreduce, closed by a broadcast
/// and a barrier. `Xor(512)` pairs whole 512-CPU nodes (node 2k with
/// node 2k+1), so the exchange traffic crosses the inter-node fabric on
/// every rank; the ring only crosses at node boundaries.
fn columbia_template() -> Vec<SpmdOp> {
    let mut t = Vec::new();
    for round in 0..3u64 {
        t.push(SpmdOp::Compute(2.0e-4));
        t.push(SpmdOp::Send {
            to: Peer::RingOffset(1),
            bytes: ByteRule::Uniform(8192),
            tag: round,
        });
        t.push(SpmdOp::Recv {
            from: Peer::RingOffset(-1),
            tag: round,
        });
        t.push(SpmdOp::Exchange {
            with: Peer::Xor(512),
            bytes: ByteRule::Uniform(32768),
            tag: 100 + round,
        });
        t.push(SpmdOp::AllReduce { bytes: 64 });
    }
    t.push(SpmdOp::Bcast {
        root: 0,
        bytes: 1 << 20,
    });
    t.push(SpmdOp::Barrier);
    t
}

/// Full-machine engine-scaling demo: the whole 2004 Columbia
/// installation — twenty 512-CPU nodes, 10,240 ranks — running one SPMD
/// workload over InfiniBand under the §2 connection budget, plus the
/// four-node 2,048-CPU NUMAlink4 capability subsystem. Runs on the
/// compact [`ProgramSet`] + [`CachedFabric`] + monomorphized engine
/// path; a run at this scale is only seconds *because* of those
/// optimizations (see `cargo bench -p columbia-bench --bench simnet`).
fn columbia_plan() -> SweepPlan {
    let mut plan = SweepPlan::new(
        "Columbia",
        "full-machine SPMD run: all twenty nodes, 10,240 ranks",
        &[
            "configuration",
            "ranks",
            "nodes",
            "fabric",
            "makespan",
            "mean comm",
            "max comm",
            "multiplexed msgs",
        ],
    );
    plan.point(columbia_full_output);
    plan.point(columbia_subsystem_output);
    plan.note("workload: 3 rounds of (compute, 8 KB ring send/recv, 32 KB node-pair exchange, 64 B allreduce), then a 1 MB broadcast and a barrier, shared across ranks as one ProgramSet template");
    plan
}

/// The full-machine Columbia point (all twenty nodes over InfiniBand
/// under the §2 connection budget) — shared with `core::spec`'s
/// `kind = "columbia"`.
pub(crate) fn columbia_full_output() -> Result<PointOutput, SimError> {
    {
        let cluster = ClusterConfig::columbia();
        let ranks = cluster.total_cpus() as usize;
        let cpus: Vec<CpuId> = (0..cluster.nodes.len() as u32)
            .flat_map(|node| {
                let per = cluster.node_model(NodeId(node)).cpus;
                (0..per).map(move |c| CpuId::new(node, c))
            })
            .collect();
        // Pure MPI at 512 procs/node over 19 peers wants p²(n−1) ≈ 5.0M
        // InfiniBand connections against the 8 × 64K budget, so MPT
        // multiplexes every cross-node message — the machine's real
        // §2 behavior at full scale.
        let faults = FaultPlan::none().with_connection_limit(ConnectionLimit {
            cards_per_node: cluster.ib_cards_per_node,
            connections_per_card: cluster.ib_connections_per_card,
            policy: ConnectionPolicy::Multiplex {
                queue_penalty: DEFAULT_MULTIPLEX_QUEUE_PENALTY,
            },
        });
        let fabric = CachedFabric::new(ClusterFabric::new(
            cluster,
            InterNodeFabric::InfiniBand,
            MptVersion::Beta,
            ranks as u32,
        ));
        let set = ProgramSet::spmd(ranks, columbia_template());
        let out = simulate_on(&set, &cpus, &fabric, &faults)?;
        Ok(PointOutput::row(vec![
            "full machine".into(),
            ranks.to_string(),
            "20".into(),
            "InfiniBand".into(),
            secs(out.makespan),
            secs(out.mean_comm()),
            secs(out.max_comm()),
            out.faults.multiplexed_messages.to_string(),
        ])
        .with_note(format!(
            "full machine: section 2's p^2(n-1) formula oversubscribes the connection budget {:.1}x at 512 procs/node over 19 peers, so every cross-node message pays the multiplex queue penalty",
            out.faults.oversubscription
        )))
    }
}

/// The capability-subsystem Columbia point (four NUMAlink4 nodes,
/// 2,048 ranks) — shared with `core::spec`'s `kind = "columbia"`.
pub(crate) fn columbia_subsystem_output() -> Result<PointOutput, SimError> {
    {
        let cluster = ClusterConfig::columbia();
        let sub = cluster.numalink4_subsystem.clone();
        let ranks = sub.len() * 512;
        let cpus: Vec<CpuId> = sub
            .iter()
            .flat_map(|&node| (0..512).map(move |c| CpuId::new(node.0, c)))
            .collect();
        let fabric = CachedFabric::new(ClusterFabric::new(
            cluster,
            InterNodeFabric::NumaLink4,
            MptVersion::Beta,
            ranks as u32,
        ));
        let set = ProgramSet::spmd(ranks, columbia_template());
        let out = simulate_on(&set, &cpus, &fabric, &FaultPlan::none())?;
        Ok(PointOutput::row(vec![
            "capability subsystem".into(),
            ranks.to_string(),
            sub.len().to_string(),
            "NUMAlink4".into(),
            secs(out.makespan),
            secs(out.mean_comm()),
            secs(out.max_comm()),
            out.faults.multiplexed_messages.to_string(),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.name()), Some(e));
        }
        assert_eq!(Experiment::parse("nope"), None);
    }

    #[test]
    fn bt_mz_aliases_fig9() {
        assert_eq!(Experiment::parse("bt_mz"), Some(Experiment::Fig9));
        assert_eq!(Experiment::parse("bt-mz"), Some(Experiment::Fig9));
    }

    #[test]
    fn hpcc_aliases_the_dgemm_stream_table() {
        assert_eq!(Experiment::parse("hpcc"), Some(Experiment::DgemmStream));
    }

    #[test]
    fn every_plan_decomposes_into_points() {
        for e in Experiment::ALL {
            let p = plan(e);
            assert!(!p.is_empty(), "{e:?} has no sweep points");
        }
        // The sweep-heavy experiments expose real parallelism.
        // 4 benches x 2 paradigms x 3 node kinds.
        assert!(plan(Experiment::Fig6).len() >= 24);
        assert!(plan(Experiment::Degraded).len() >= 10);
        assert_eq!(plan(Experiment::Table1).len(), 1);
    }

    #[test]
    fn trace_report_finds_the_waiting_ranks() {
        let r = run(Experiment::Trace);
        // Top-8 of 16 ranks.
        assert_eq!(r.rows.len(), 8);
        // The compute skew makes rank 15 the laggard, so it never tops
        // the wait table; some other rank does, with real wait time.
        assert_ne!(r.rows[0][0], "15");
        assert!(
            r.rows[0][3] != "0.00 us",
            "top hotspot must wait: {:?}",
            r.rows[0]
        );
        // The seeded drops leave fabric counters behind.
        let msgs = r.notes.iter().find(|n| n.contains("messages:")).unwrap();
        assert!(msgs.contains("dropped"), "{msgs}");
        assert!(
            r.notes.iter().any(|n| n.contains("heaviest link")),
            "inter-node traffic must be attributed: {:?}",
            r.notes
        );
    }

    #[test]
    fn table1_reproduces_node_table() {
        let r = run(Experiment::Table1);
        let text = r.to_text();
        assert!(text.contains("Itanium2 1.6 GHz/9 MB"));
        assert!(text.contains("NUMAlink3"));
        assert!(text.contains("3.07 Tflop/s"));
    }

    #[test]
    fn stride_report_shows_the_1_9x_gain() {
        let r = run(Experiment::Stride);
        // Row 0 = stride 1, row 1 = stride 2 of STREAM triad.
        let dense: f64 = r.rows[0][2]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let strided: f64 = r.rows[1][2]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let gain = strided / dense;
        assert!((gain - 1.9).abs() < 0.1, "gain={gain}");
    }

    #[test]
    fn table2_runs_all_thread_counts() {
        let r = run(Experiment::Table2);
        assert_eq!(r.rows.len(), 7); // baseline + 6 thread counts
        assert!(r.rows[6][0].contains("504"));
    }

    #[test]
    fn table5_shows_flat_scaling() {
        let r = run(Experiment::Table5);
        let eff_last: f64 = r.rows.last().unwrap()[4]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(eff_last > 90.0, "eff={eff_last}%");
    }

    /// Parse the `{:.3}x` slowdown column of the degraded report.
    fn slowdown(row: &[String]) -> f64 {
        row[2].trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn degraded_inflation_is_monotone_in_drop_rate() {
        let r = run(Experiment::Degraded);
        // Rows 0..=4: healthy, then drop 2/5/10/20%.
        assert_eq!(r.rows[0][0], "healthy");
        assert_eq!(slowdown(&r.rows[0]), 1.0);
        for w in r.rows[..5].windows(2) {
            assert!(
                slowdown(&w[1]) >= slowdown(&w[0]),
                "{} ({}) must not beat {} ({})",
                w[1][0],
                w[1][2],
                w[0][0],
                w[0][2]
            );
        }
        let worst = slowdown(&r.rows[4]);
        assert!(worst > 1.0, "20% drops must cost something: {worst}x");
        let dropped: Vec<u64> = r.rows[1..5]
            .iter()
            .map(|row| row[3].parse().unwrap())
            .collect();
        assert!(dropped.windows(2).all(|w| w[1] >= w[0]), "{dropped:?}");
        assert!(dropped[3] > 0);
    }

    #[test]
    fn degraded_faults_each_leave_a_mark() {
        let r = run(Experiment::Degraded);
        // Every non-healthy scenario must cost time, gracefully.
        for row in &r.rows[1..] {
            assert!(slowdown(row) >= 1.0, "{}: {}", row[0], row[2]);
        }
        let slow_node = r
            .rows
            .iter()
            .find(|row| row[0].starts_with("slow node"))
            .unwrap();
        assert!(
            slowdown(slow_node) > 1.3,
            "2x compute on half the ranks: {}",
            slow_node[2]
        );
        let muxed = r
            .rows
            .iter()
            .find(|row| row[0].contains("multiplexed"))
            .unwrap();
        let n_muxed: u64 = muxed[5].parse().unwrap();
        assert!(n_muxed > 0, "halved budget must multiplex messages");
        // The fail-fast counterpart of the multiplex row is a note.
        assert!(
            r.notes.iter().any(|n| n.contains("connections exhausted")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn failed_simulations_render_as_reports() {
        let err = SimError::ConnectionsExhausted {
            node: 3,
            procs_on_node: 512,
            required: 786_432,
            available: 524_288,
        };
        let r = failure_report(Experiment::Fig11.name(), &err);
        let text = r.to_text();
        assert!(text.contains("node 3"), "{text}");
        assert!(text.contains("Fault model"), "{text}");
    }
}
