//! The HPC Challenge subset the paper runs (§3.1, §4.1.1, §4.2, §4.6.1).
//!
//! Three components:
//!
//! * [`dgemm`] — optimum floating-point rate via a level-3 BLAS-style
//!   matrix multiply sized to 75% of the memory of the CPUs under test;
//! * [`stream`] — sustained memory bandwidth for copy/scale/add/triad,
//!   also 75%-of-memory sized, including the §4.2 CPU-stride study;
//! * [`beff`] — the effective-bandwidth (b_eff) latency/bandwidth tests
//!   in the ping-pong, natural-ring, and random-ring patterns, both
//!   in-node (Fig. 5) and across two/four nodes over NUMAlink4 or
//!   InfiniBand (Fig. 10).
//!
//! Each component has a *simulated* mode (the machine model at Columbia
//! scale, regenerating the paper's figures) and, where meaningful, a
//! *real* mode that exercises the actual kernels on the host.

pub mod beff;
pub mod dgemm;
pub mod stream;

pub use beff::{BeffPoint, BeffSweep};
pub use dgemm::DgemmResult;
pub use stream::StreamResult;

/// Fraction of available memory the HPCC rules size operands to.
pub const MEMORY_FRACTION: f64 = 0.75;
