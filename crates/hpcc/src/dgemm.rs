//! HPCC DGEMM: optimum floating-point performance.
//!
//! §4.1.1: DGEMM correlates with processor speed and cache size, not
//! interconnect — 5.75 Gflop/s on a BX2b, 6% over the identical
//! 3700/BX2a results. §4.2: a CPU stride of 2 or 4 moves DGEMM by less
//! than 0.5% (it is cache-resident, not bus-bound). §4.6.1: the
//! internode network plays "a very minor role (less than 0.5%)".

use columbia_kernels::dgemm::{dgemm_flops, dgemm_parallel};
use columbia_machine::calib;
use columbia_machine::node::{NodeKind, NodeModel};

use crate::MEMORY_FRACTION;

/// Result of a DGEMM measurement (simulated or real).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DgemmResult {
    /// Node flavour measured.
    pub kind: NodeKind,
    /// Per-CPU sustained rate, Gflop/s.
    pub gflops_per_cpu: f64,
    /// Matrix dimension used.
    pub n: usize,
}

/// Matrix dimension that makes three `n²` double matrices use 75% of
/// the per-CPU memory (the HPCC sizing rule).
pub fn problem_size(node: &NodeModel) -> usize {
    let budget = node.memory_per_cpu() as f64 * MEMORY_FRACTION;
    ((budget / (3.0 * 8.0)).sqrt()) as usize
}

/// Simulated per-CPU DGEMM rate on a node flavour.
///
/// DGEMM blocks into cache, so neither bus sharing nor stride nor the
/// interconnect moves it; the model is simply peak × the calibrated
/// BLAS efficiency. `stride` is accepted to document the §4.2 finding:
/// it shifts the result by < 0.5%.
pub fn simulate(kind: NodeKind, stride: u32) -> DgemmResult {
    let node = NodeModel::new(kind);
    let base = node.processor.peak_gflops() * calib::DGEMM_EFFICIENCY;
    // Strided runs measured "differences of less than 0.5%": a small
    // deterministic ripple from DTLB/conflict effects.
    let ripple = if stride > 1 { 1.003 } else { 1.0 };
    DgemmResult {
        kind,
        gflops_per_cpu: base * ripple,
        n: problem_size(&node),
    }
}

/// Real host-scale DGEMM: multiply `n×n` matrices with the parallel
/// blocked kernel and report achieved Gflop/s.
pub fn run_real(n: usize) -> DgemmResult {
    let a = vec![1.0e-3; n * n];
    let b = vec![2.0e-3; n * n];
    let mut c = vec![0.0; n * n];
    let t = std::time::Instant::now();
    dgemm_parallel(n, n, n, 1.0, &a, &b, 0.0, &mut c);
    let secs = t.elapsed().as_secs_f64();
    DgemmResult {
        kind: NodeKind::Bx2b,
        gflops_per_cpu: dgemm_flops(n, n, n) / secs / 1.0e9,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bx2b_reaches_5_75_gflops() {
        let r = simulate(NodeKind::Bx2b, 1);
        assert!(
            (r.gflops_per_cpu - 5.75).abs() < 0.02,
            "{}",
            r.gflops_per_cpu
        );
    }

    #[test]
    fn bx2b_is_6pct_over_the_others() {
        let b = simulate(NodeKind::Bx2b, 1).gflops_per_cpu;
        let a = simulate(NodeKind::Bx2a, 1).gflops_per_cpu;
        let t = simulate(NodeKind::Altix3700, 1).gflops_per_cpu;
        assert_eq!(a, t, "3700 and BX2a are essentially identical");
        let gain = b / a;
        assert!((1.05..1.08).contains(&gain), "gain={gain}");
    }

    #[test]
    fn stride_moves_dgemm_by_less_than_half_percent() {
        for kind in NodeKind::ALL {
            let dense = simulate(kind, 1).gflops_per_cpu;
            let strided = simulate(kind, 4).gflops_per_cpu;
            let delta = (strided / dense - 1.0).abs();
            assert!(delta < 0.005, "stride effect too big: {delta}");
        }
    }

    #[test]
    fn problem_size_uses_75_pct_of_memory() {
        let node = NodeModel::new(NodeKind::Bx2b);
        let n = problem_size(&node);
        let bytes = 3 * n * n * 8;
        let budget = node.memory_per_cpu() as f64 * MEMORY_FRACTION;
        assert!(bytes as f64 <= budget);
        assert!(
            bytes as f64 > 0.97 * budget,
            "should nearly fill the budget"
        );
    }

    #[test]
    fn real_run_produces_positive_rate() {
        let r = run_real(96);
        assert!(r.gflops_per_cpu > 0.0);
    }
}
