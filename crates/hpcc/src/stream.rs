//! HPCC STREAM: sustained memory bandwidth (§4.1.1, §4.2).
//!
//! The measured behaviour the model reproduces:
//!
//! * one process: ~3.8 GB/s; every CPU of a node dense: ~2 GB/s per
//!   CPU (the shared front-side bus), scaling linearly to 7,500 CPUs;
//! * stride 2 or 4: per-CPU numbers return to the 1-CPU level — 1.9×
//!   on triad;
//! * the 3700 holds an unexplained ~1% edge over both BX2 flavours;
//! * the internode network plays no role (STREAM is node-local).

use columbia_machine::cluster::ClusterConfig;
use columbia_machine::cluster::NodeId;
use columbia_machine::memory::{MemoryModel, StreamOp};
use columbia_machine::node::{NodeKind, NodeModel};
use columbia_runtime::placement::{Placement, PlacementStrategy};

use crate::MEMORY_FRACTION;

/// Result of one STREAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// Node flavour.
    pub kind: NodeKind,
    /// Active CPUs.
    pub cpus: u32,
    /// Placement stride.
    pub stride: u32,
    /// Per-CPU bandwidth for each op, bytes/s, in STREAM order.
    pub per_cpu: [(StreamOp, f64); 4],
}

impl StreamResult {
    /// Per-CPU triad bandwidth (the headline number).
    pub fn triad(&self) -> f64 {
        self.per_cpu[3].1
    }

    /// Aggregate triad bandwidth over all active CPUs.
    pub fn aggregate_triad(&self) -> f64 {
        self.triad() * self.cpus as f64
    }
}

/// Vector length per CPU under the 75%-of-memory rule (three vectors).
pub fn problem_size(node: &NodeModel) -> usize {
    (node.memory_per_cpu() as f64 * MEMORY_FRACTION / (3.0 * 8.0)) as usize
}

/// Simulate STREAM on `cpus` CPUs of a node placed at `stride`.
pub fn simulate(kind: NodeKind, cpus: u32, stride: u32) -> StreamResult {
    assert!(cpus >= 1 && stride >= 1);
    let cluster = ClusterConfig::uniform(kind, 1);
    let node = NodeModel::new(kind);
    let strategy = if stride == 1 {
        PlacementStrategy::Dense
    } else {
        PlacementStrategy::Strided(stride)
    };
    let placement = Placement::single_node(&cluster, NodeId(0), cpus as usize, 1, strategy);
    let mem = MemoryModel::new(&node);
    let active = placement.active_on_node(NodeId(0));
    // Mean sharer count across active CPUs decides the per-CPU rate.
    let mean_sharers = placement.mean_bus_sharers(&cluster);
    let sharers = if mean_sharers > 1.5 { 2 } else { 1 };
    let per_cpu = [
        StreamOp::Copy,
        StreamOp::Scale,
        StreamOp::Add,
        StreamOp::Triad,
    ]
    .map(|op| (op, mem.stream_bandwidth(op, sharers)));
    let _ = active;
    StreamResult {
        kind,
        cpus,
        stride,
        per_cpu,
    }
}

/// The October-2004 scaling observation: aggregate triad over `cpus`
/// CPUs spread across as many nodes as needed, ~2 GB/s per CPU.
pub fn aggregate_scaling(kind: NodeKind, cpus: u32) -> f64 {
    let per_node = 512.min(cpus);
    simulate(kind, per_node, 1).triad() * cpus as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cpu_hits_3_8_gbs() {
        let r = simulate(NodeKind::Bx2b, 1, 1);
        assert!((3.5e9..3.9e9).contains(&r.triad()), "{}", r.triad());
    }

    #[test]
    fn dense_node_gives_2_gbs_per_cpu() {
        let r = simulate(NodeKind::Bx2b, 512, 1);
        assert!((1.8e9..2.1e9).contains(&r.triad()), "{}", r.triad());
    }

    #[test]
    fn stride_2_restores_single_cpu_rate() {
        // §4.2: "at a CPU stride of either 2 or 4, the STREAM benchmark
        // produced per-processor numbers equivalent to the 1-CPU case
        // ... the bandwidth is 1.9x higher."
        let dense = simulate(NodeKind::Altix3700, 128, 1);
        let strided = simulate(NodeKind::Altix3700, 128, 2);
        let single = simulate(NodeKind::Altix3700, 1, 1);
        assert!((strided.triad() - single.triad()).abs() / single.triad() < 1e-9);
        let gain = strided.triad() / dense.triad();
        assert!((gain - 1.9).abs() < 0.05, "gain={gain}");
    }

    #[test]
    fn stride_4_equivalent_to_stride_2() {
        let s2 = simulate(NodeKind::Bx2a, 64, 2);
        let s4 = simulate(NodeKind::Bx2a, 64, 4);
        assert_eq!(s2.triad(), s4.triad());
    }

    #[test]
    fn the_3700_keeps_its_1pct_edge() {
        let t3 = simulate(NodeKind::Altix3700, 256, 1).triad();
        let tb = simulate(NodeKind::Bx2b, 256, 1).triad();
        let edge = t3 / tb;
        assert!((edge - 1.01).abs() < 1e-6, "edge={edge}");
    }

    #[test]
    fn aggregate_scales_linearly_to_7500_cpus() {
        let per_cpu_2 = aggregate_scaling(NodeKind::Altix3700, 2) / 2.0;
        let per_cpu_7500 = aggregate_scaling(NodeKind::Altix3700, 7500) / 7500.0;
        assert!((per_cpu_2 - per_cpu_7500).abs() / per_cpu_2 < 1e-9);
        assert!((1.8e9..2.2e9).contains(&per_cpu_7500));
    }

    #[test]
    fn copy_is_fastest_triad_slowest_in_order() {
        let r = simulate(NodeKind::Bx2b, 8, 1);
        assert!(r.per_cpu[0].1 >= r.per_cpu[3].1);
    }

    #[test]
    fn problem_size_fills_budget() {
        let node = NodeModel::new(NodeKind::Altix3700);
        let n = problem_size(&node);
        let bytes = 3 * n * 8;
        assert!((bytes as f64) <= node.memory_per_cpu() as f64 * MEMORY_FRACTION);
        assert!((bytes as f64) > 0.99 * node.memory_per_cpu() as f64 * MEMORY_FRACTION);
    }
}
