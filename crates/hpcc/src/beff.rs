//! The b_eff latency/bandwidth sweeps (Fig. 5 in-node, Fig. 10
//! multinode).
//!
//! For each CPU count the benchmark reports, this module places the
//! processes (dense within nodes, block across nodes), builds the
//! appropriate fabric, and evaluates the three patterns from
//! `columbia_simnet::patterns`.

use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::{ClusterFabric, MptVersion};
use columbia_simnet::patterns::{natural_ring, ping_pong, random_ring, PatternResult};

/// The three b_eff patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Average ping-pong over pairs.
    PingPong,
    /// Natural (rank-order) ring, worst-case latency.
    NaturalRing,
    /// Random-permutation ring, geometric mean over trials.
    RandomRing,
}

impl Pattern {
    /// All patterns in the order the figures plot them.
    pub const ALL: [Pattern; 3] = [Pattern::PingPong, Pattern::NaturalRing, Pattern::RandomRing];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::PingPong => "Average Ping-Pong",
            Pattern::NaturalRing => "Natural Ring",
            Pattern::RandomRing => "Random Ring",
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeffPoint {
    /// Pattern measured.
    pub pattern: Pattern,
    /// Total CPUs participating.
    pub cpus: u32,
    /// Latency in seconds.
    pub latency: f64,
    /// Per-process bandwidth in bytes/s.
    pub bandwidth: f64,
}

/// A sweep over CPU counts for one machine configuration.
#[derive(Debug, Clone)]
pub struct BeffSweep {
    /// Human-readable configuration label ("BX2b", "NUMAlink4 2 nodes",
    /// "InfiniBand 4 nodes", …).
    pub label: String,
    /// Points, ordered by (pattern, cpus).
    pub points: Vec<BeffPoint>,
}

fn dense_cpus(nodes: u32, total: u32) -> Vec<CpuId> {
    let per_node = total.div_ceil(nodes);
    let mut v = Vec::with_capacity(total as usize);
    'outer: for nd in 0..nodes {
        for c in 0..per_node {
            if v.len() as u32 == total {
                break 'outer;
            }
            v.push(CpuId::new(nd, c));
        }
    }
    v
}

fn eval(fabric: &ClusterFabric, cpus: &[CpuId], pattern: Pattern) -> PatternResult {
    match pattern {
        Pattern::PingPong => ping_pong(fabric, cpus),
        Pattern::NaturalRing => natural_ring(fabric, cpus),
        Pattern::RandomRing => random_ring(fabric, cpus, 8, 0x5EED),
    }
}

/// In-node sweep for Fig. 5: one node of `kind`, CPU counts 4..512.
pub fn in_node_sweep(kind: NodeKind, cpu_counts: &[u32]) -> BeffSweep {
    let fabric = ClusterFabric::single_node(ClusterConfig::uniform(kind, 1));
    let mut points = Vec::new();
    for pattern in Pattern::ALL {
        for &n in cpu_counts {
            let cpus = dense_cpus(1, n);
            let r = eval(&fabric, &cpus, pattern);
            points.push(BeffPoint {
                pattern,
                cpus: n,
                latency: r.latency,
                bandwidth: r.bandwidth_per_proc,
            });
        }
    }
    BeffSweep {
        label: kind.name().to_string(),
        points,
    }
}

/// Multinode sweep for Fig. 10: `nodes` BX2b boxes over `inter`.
pub fn multi_node_sweep(
    nodes: u32,
    inter: InterNodeFabric,
    mpt: MptVersion,
    cpu_counts: &[u32],
) -> BeffSweep {
    assert!(nodes >= 1);
    let cfg = ClusterConfig::uniform(NodeKind::Bx2b, nodes);
    let mut points = Vec::new();
    for pattern in Pattern::ALL {
        for &n in cpu_counts {
            let fabric = ClusterFabric::new(cfg.clone(), inter, mpt, n);
            let cpus = dense_cpus(nodes, n);
            let r = eval(&fabric, &cpus, pattern);
            points.push(BeffPoint {
                pattern,
                cpus: n,
                latency: r.latency,
                bandwidth: r.bandwidth_per_proc,
            });
        }
    }
    BeffSweep {
        label: format!("{} {} node(s)", inter.name(), nodes),
        points,
    }
}

impl BeffSweep {
    /// Look up a point.
    pub fn get(&self, pattern: Pattern, cpus: u32) -> Option<&BeffPoint> {
        self.points
            .iter()
            .find(|p| p.pattern == pattern && p.cpus == cpus)
    }
}

/// The CPU counts Fig. 5 plots.
pub const FIG5_CPUS: [u32; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// The CPU counts Fig. 10 plots.
pub const FIG10_CPUS: [u32; 6] = [64, 128, 256, 512, 1024, 2048];

/// Reserved node id for future heterogeneity (the sweeps always start
/// at node 0 today).
pub const FIRST_NODE: NodeId = NodeId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_sweep_has_all_points() {
        let s = in_node_sweep(NodeKind::Bx2b, &FIG5_CPUS);
        assert_eq!(s.points.len(), 3 * FIG5_CPUS.len());
        assert!(s.get(Pattern::RandomRing, 512).is_some());
        assert!(s.get(Pattern::RandomRing, 3).is_none());
    }

    #[test]
    fn ping_pong_latency_consistent_across_node_types_at_small_counts() {
        // Fig. 5: "For Ping-Pong and Natural Ring, the latencies are
        // remarkably consistent between 3700 and both models of BX2."
        let a = in_node_sweep(NodeKind::Altix3700, &[8]);
        let b = in_node_sweep(NodeKind::Bx2b, &[8]);
        let la = a.get(Pattern::PingPong, 8).unwrap().latency;
        let lb = b.get(Pattern::PingPong, 8).unwrap().latency;
        assert!((la - lb).abs() / la < 0.25, "la={la:e} lb={lb:e}");
    }

    #[test]
    fn random_ring_separates_at_high_counts() {
        // Fig. 5: at large CPU counts the BX2 interconnect pulls ahead.
        let a = in_node_sweep(NodeKind::Altix3700, &[512]);
        let b = in_node_sweep(NodeKind::Bx2b, &[512]);
        let la = a.get(Pattern::RandomRing, 512).unwrap().latency;
        let lb = b.get(Pattern::RandomRing, 512).unwrap().latency;
        assert!(lb < la, "BX2 should win at 512: {lb:e} vs {la:e}");
    }

    #[test]
    fn fig10_infiniband_latency_penalty_grows_with_nodes() {
        let two = multi_node_sweep(2, InterNodeFabric::InfiniBand, MptVersion::Beta, &[256]);
        let four = multi_node_sweep(4, InterNodeFabric::InfiniBand, MptVersion::Beta, &[256]);
        let l2 = two.get(Pattern::PingPong, 256).unwrap().latency;
        let l4 = four.get(Pattern::PingPong, 256).unwrap().latency;
        assert!(
            l4 > l2,
            "four-node IB ping-pong must be worse: {l4:e} vs {l2:e}"
        );
    }

    #[test]
    fn fig10_numalink_beats_infiniband() {
        let nl = multi_node_sweep(4, InterNodeFabric::NumaLink4, MptVersion::Beta, &[1024]);
        let ib = multi_node_sweep(4, InterNodeFabric::InfiniBand, MptVersion::Beta, &[1024]);
        for pattern in Pattern::ALL {
            let pn = nl.get(pattern, 1024).unwrap();
            let pi = ib.get(pattern, 1024).unwrap();
            assert!(pn.latency < pi.latency, "{pattern:?} latency");
            assert!(pn.bandwidth > pi.bandwidth, "{pattern:?} bandwidth");
        }
    }

    #[test]
    fn natural_ring_two_and_four_node_ib_bandwidth_similar() {
        // §4.6.1: "For Natural Ring, the two- and four-node tests
        // yielded similar results."
        let two = multi_node_sweep(2, InterNodeFabric::InfiniBand, MptVersion::Beta, &[512]);
        let four = multi_node_sweep(4, InterNodeFabric::InfiniBand, MptVersion::Beta, &[512]);
        let b2 = two.get(Pattern::NaturalRing, 512).unwrap().bandwidth;
        let b4 = four.get(Pattern::NaturalRing, 512).unwrap().bandwidth;
        assert!((b2 / b4 - 1.0).abs() < 0.35, "b2={b2:e} b4={b4:e}");
    }

    #[test]
    fn released_mpt_hurts_ib_random_ring() {
        let beta = multi_node_sweep(4, InterNodeFabric::InfiniBand, MptVersion::Beta, &[256]);
        let rel = multi_node_sweep(4, InterNodeFabric::InfiniBand, MptVersion::Released, &[256]);
        let bb = beta.get(Pattern::RandomRing, 256).unwrap().bandwidth;
        let br = rel.get(Pattern::RandomRing, 256).unwrap().bandwidth;
        assert!(br < bb);
    }
}
