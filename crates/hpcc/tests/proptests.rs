//! Property-based tests over the HPCC models.

use columbia_hpcc::beff::{in_node_sweep, multi_node_sweep, Pattern};
use columbia_hpcc::{dgemm, stream};
use columbia_machine::cluster::InterNodeFabric;
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::MptVersion;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = NodeKind> {
    prop::sample::select(vec![NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stream_never_exceeds_single_cpu_rate(
        kind in any_kind(),
        cpus in 1u32..512,
        stride in 1u32..4,
    ) {
        prop_assume!(cpus * stride <= 512);
        let r = stream::simulate(kind, cpus, stride);
        let solo = stream::simulate(kind, 1, 1);
        prop_assert!(r.triad() <= solo.triad() * 1.0001);
        prop_assert!(r.triad() > 0.0);
        // Aggregate grows linearly with CPUs.
        prop_assert!((r.aggregate_triad() - r.triad() * cpus as f64).abs() < 1.0);
    }

    #[test]
    fn dgemm_bounded_by_peak(kind in any_kind(), stride in 1u32..5) {
        let d = dgemm::simulate(kind, stride);
        let peak = columbia_machine::node::NodeModel::new(kind)
            .processor
            .peak_gflops();
        prop_assert!(d.gflops_per_cpu < peak);
        prop_assert!(d.gflops_per_cpu > 0.8 * peak, "BLAS should be near peak");
    }

    #[test]
    fn beff_latencies_positive_and_bandwidths_bounded(
        kind in any_kind(),
        cpus in prop::sample::select(vec![4u32, 8, 32, 128, 512]),
    ) {
        let sweep = in_node_sweep(kind, &[cpus]);
        for pattern in Pattern::ALL {
            let p = sweep.get(pattern, cpus).unwrap();
            prop_assert!(p.latency > 0.0);
            prop_assert!(p.bandwidth > 0.0);
            // No pattern can beat the raw NUMAlink4 link.
            prop_assert!(p.bandwidth < 6.4e9);
        }
    }

    #[test]
    fn multinode_ib_never_beats_numalink(
        nodes in prop::sample::select(vec![2u32, 4]),
        cpus in prop::sample::select(vec![128u32, 512, 1024]),
    ) {
        let nl = multi_node_sweep(nodes, InterNodeFabric::NumaLink4, MptVersion::Beta, &[cpus]);
        let ib = multi_node_sweep(nodes, InterNodeFabric::InfiniBand, MptVersion::Beta, &[cpus]);
        for pattern in Pattern::ALL {
            let pn = nl.get(pattern, cpus).unwrap();
            let pi = ib.get(pattern, cpus).unwrap();
            prop_assert!(pi.latency >= pn.latency, "{pattern:?}");
            prop_assert!(pi.bandwidth <= pn.bandwidth * 1.0001, "{pattern:?}");
        }
    }
}
