//! Observability overhead: the tracer hooks must be free when disabled.
//!
//! The engine is generic over `Tracer`, so the `NullTracer` variants
//! here should be indistinguishable from the plain `simulate_with_faults`
//! path (the hooks monomorphize to nothing); the acceptance bar is <2%
//! on the 512-rank ring. The `RecordingTracer` rows measure what a full
//! capture actually costs.

use columbia_machine::cluster::{ClusterConfig, CpuId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::ClusterFabric;
use columbia_simnet::obs::{NullTracer, RecordingTracer};
use columbia_simnet::{simulate_traced, simulate_with_faults, FaultPlan, Op};
use criterion::{criterion_group, criterion_main, Criterion};

fn ring(n: usize, rounds: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for round in 0..rounds {
                ops.push(Op::Compute(1e-4));
                ops.push(Op::Send {
                    to: (r + 1) % n,
                    bytes: 8192,
                    tag: round,
                });
                ops.push(Op::Recv {
                    from: (r + n - 1) % n,
                    tag: round,
                });
            }
            ops
        })
        .collect()
}

fn bench_tracer_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
    let n = 512usize;
    let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
    let programs = ring(n, 10);
    let plan = FaultPlan::none();
    g.bench_function("ring_512_baseline", |b| {
        b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
    });
    g.bench_function("ring_512_null_tracer", |b| {
        b.iter(|| simulate_traced(&programs, &cpus, &fabric, &plan, &mut NullTracer).unwrap());
    });
    g.bench_function("ring_512_recording_tracer", |b| {
        b.iter(|| {
            let mut tracer = RecordingTracer::new();
            simulate_traced(&programs, &cpus, &fabric, &plan, &mut tracer).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tracer_overhead);
criterion_main!(benches);
