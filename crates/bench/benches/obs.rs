//! Observability overhead: the tracer hooks must be free when disabled.
//!
//! The engine is generic over `Tracer`, so the `NullTracer` variants
//! here should be indistinguishable from the plain `simulate_with_faults`
//! path (the hooks monomorphize to nothing); the acceptance bar is <2%
//! on the 512-rank ring. The `RecordingTracer` rows measure what a full
//! capture actually costs.
//!
//! The host-telemetry hooks in the sweep executor carry the same
//! contract at job granularity: with no capture live, every hook is
//! one relaxed atomic load. `bench_host_overhead` measures the
//! instrumented pool against a bare serial loop over the same jobs and
//! emits the difference as `host_obs_overhead`; CI's bench check holds
//! `overhead_pct` under 2.

use std::time::Instant;

use columbia::obs::host;
use columbia::par::ThreadPool;
use columbia_bench::BenchRecord;
use columbia_machine::cluster::{ClusterConfig, CpuId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::ClusterFabric;
use columbia_simnet::obs::{NullTracer, RecordingTracer};
use columbia_simnet::{simulate_traced, simulate_with_faults, FaultPlan, Op};
use criterion::{criterion_group, criterion_main, Criterion};

fn ring(n: usize, rounds: u64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for round in 0..rounds {
                ops.push(Op::Compute(1e-4));
                ops.push(Op::Send {
                    to: (r + 1) % n,
                    bytes: 8192,
                    tag: round,
                });
                ops.push(Op::Recv {
                    from: (r + n - 1) % n,
                    tag: round,
                });
            }
            ops
        })
        .collect()
}

fn bench_tracer_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
    let n = 512usize;
    let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
    let programs = ring(n, 10);
    let plan = FaultPlan::none();
    g.bench_function("ring_512_baseline", |b| {
        b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
    });
    g.bench_function("ring_512_null_tracer", |b| {
        b.iter(|| simulate_traced(&programs, &cpus, &fabric, &plan, &mut NullTracer).unwrap());
    });
    g.bench_function("ring_512_recording_tracer", |b| {
        b.iter(|| {
            let mut tracer = RecordingTracer::new();
            simulate_traced(&programs, &cpus, &fabric, &plan, &mut tracer).unwrap()
        });
    });
    g.finish();
}

/// Minimum wall nanoseconds per call of `a` and of `b`, measured
/// **interleaved** (a, b, a, b, …) over `iters` rounds after `warmup`
/// discarded ones. Interleaving cancels the drift that poisons
/// back-to-back comparisons (frequency ramp-up, allocator and cache
/// warm-up land on whichever side runs second); the per-side minimum
/// then estimates true cost, since scheduling noise only ever slows a
/// run.
fn time_pair_ns(warmup: u32, iters: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..warmup {
        a();
        b();
    }
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_nanos() as f64);
    }
    (best_a, best_b)
}

/// The sweep executor's host-telemetry hooks with no capture live,
/// against a bare loop over the same jobs: 8 sweep-point-sized
/// simulations (a 64-rank ring) per iteration, run through the
/// instrumented single-worker pool vs. called directly. The emitted
/// `overhead_pct` is what the disabled hooks cost per job — CI fails
/// the bench check at 2%.
fn bench_host_overhead(c: &mut Criterion) {
    assert!(
        !host::is_enabled(),
        "overhead is measured with telemetry disabled"
    );
    let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
    let n = 64usize;
    let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
    let programs = ring(n, 4);
    let plan = FaultPlan::none();
    let jobs = 8usize;
    let point = |_i: usize| {
        simulate_with_faults(&programs, &cpus, &fabric, &plan)
            .unwrap()
            .makespan
    };

    let pool = ThreadPool::new(1);
    let (direct_ns, pool_ns) = time_pair_ns(
        3,
        30,
        || {
            for i in 0..jobs {
                std::hint::black_box(point(i));
            }
        },
        || {
            let out = pool.run((0..jobs).map(|i| move || point(i)).collect::<Vec<_>>());
            std::hint::black_box(out);
        },
    );
    let overhead_pct = (pool_ns - direct_ns) / direct_ns * 100.0;
    BenchRecord::new("host_obs_overhead", "overhead_pct", false)
        .metric("direct_ns_per_iter", direct_ns, 0)
        .metric("pool_ns_per_iter", pool_ns, 0)
        .metric("overhead_pct", overhead_pct, 2)
        .emit();

    let mut g = c.benchmark_group("host");
    g.sample_size(10);
    g.bench_function("ring_64_x8_direct", |b| {
        b.iter(|| (0..jobs).map(point).collect::<Vec<_>>());
    });
    g.bench_function("ring_64_x8_pool_telemetry_off", |b| {
        b.iter(|| pool.run((0..jobs).map(|i| move || point(i)).collect::<Vec<_>>()));
    });
    g.finish();
}

/// What the analyzer itself costs, relative to the capture it consumes:
/// record a 512-rank 10-round ring once, then time `analyze` (critical
/// path + imbalance + comm matrix) against the traced simulation that
/// produced the bundle. Emitted as `analysis_cost` with the
/// capture-relative ratio as primary — informational (unbaselined),
/// since the analyzer runs offline on already-captured data and never
/// sits on the untraced engine path.
fn bench_analysis_cost(c: &mut Criterion) {
    let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
    let n = 512usize;
    let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
    let programs = ring(n, 10);
    let plan = FaultPlan::none();
    let mut tracer = RecordingTracer::new();
    simulate_traced(&programs, &cpus, &fabric, &plan, &mut tracer).unwrap();
    let bundle = tracer.into_bundle("analysis bench");

    let (capture_ns, analyze_ns) = time_pair_ns(
        3,
        30,
        || {
            let mut t = RecordingTracer::new();
            std::hint::black_box(
                simulate_traced(&programs, &cpus, &fabric, &plan, &mut t).unwrap(),
            );
        },
        || {
            std::hint::black_box(columbia::obs::analyze(&bundle));
        },
    );
    BenchRecord::new("analysis_cost", "analyze_vs_capture_ratio", false)
        .metric("capture_ns_per_iter", capture_ns, 0)
        .metric("analyze_ns_per_iter", analyze_ns, 0)
        .metric("analyze_vs_capture_ratio", analyze_ns / capture_ns, 4)
        .emit();

    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("ring_512_analyze", |b| {
        b.iter(|| columbia::obs::analyze(&bundle));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tracer_overhead,
    bench_host_overhead,
    bench_analysis_cost
);
criterion_main!(benches);
