//! Fault-injection benches: engine overhead and makespan inflation of
//! a faulted fabric versus the healthy baseline.

use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::{ClusterFabric, MptVersion};
use columbia_simnet::{simulate_with_faults, FaultPlan, Op};
use criterion::{criterion_group, criterion_main, Criterion};

/// Two BX2b nodes, `per_node` ranks each, ring exchange with compute.
fn ring_setup(per_node: usize) -> (Vec<Vec<Op>>, Vec<CpuId>, ClusterFabric) {
    let n = 2 * per_node;
    let fabric = ClusterFabric::new(
        ClusterConfig::uniform(NodeKind::Bx2b, 2),
        InterNodeFabric::InfiniBand,
        MptVersion::Beta,
        n as u32,
    );
    let cpus: Vec<CpuId> = (0..n)
        .map(|i| CpuId::new((i / per_node) as u32, (i % per_node) as u32))
        .collect();
    let programs: Vec<Vec<Op>> = (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for round in 0..10u64 {
                ops.push(Op::Compute(1e-4));
                ops.push(Op::Send {
                    to: (r + 1) % n,
                    bytes: 8192,
                    tag: round,
                });
                ops.push(Op::Recv {
                    from: (r + n - 1) % n,
                    tag: round,
                });
            }
            ops
        })
        .collect();
    (programs, cpus, fabric)
}

fn bench_fault_rates(c: &mut Criterion) {
    let (programs, cpus, fabric) = ring_setup(256);
    let healthy = simulate_with_faults(&programs, &cpus, &fabric, &FaultPlan::none())
        .unwrap()
        .makespan;

    let mut g = c.benchmark_group("faults");
    g.sample_size(10);
    for drop_pct in [0u32, 2, 5, 10, 20] {
        let plan = FaultPlan::with_drops(42, drop_pct as f64 / 100.0);
        let out = simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
        // The quantity under study: simulated-time inflation per rate.
        eprintln!(
            "faults/drop_{drop_pct}pct: makespan {:.3} ms, inflation {:.3}x, {} drops",
            out.makespan * 1e3,
            out.makespan / healthy,
            out.faults.drop_events,
        );
        g.bench_function(format!("ring_512_drop_{drop_pct}pct"), |b| {
            b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
        });
    }
    g.finish();
}

fn bench_fault_kinds(c: &mut Criterion) {
    let (programs, cpus, fabric) = ring_setup(256);
    let mut g = c.benchmark_group("fault_kinds");
    g.sample_size(10);
    let plans = [
        ("healthy", FaultPlan::none()),
        (
            "degraded_link",
            FaultPlan::none().degrade_link(NodeId(0), NodeId(1), 4.0, 0.25),
        ),
        ("slow_node", FaultPlan::none().slow_node(NodeId(1), 2.0)),
    ];
    for (name, plan) in plans {
        g.bench_function(name, |b| {
            b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fault_rates, bench_fault_kinds);
criterion_main!(benches);
