//! Fault-injection benches: engine overhead and makespan inflation of
//! a faulted fabric versus the healthy baseline — plus the mailbox
//! fast-path before/after comparison, reported as a machine-readable
//! `BENCH JSON` line (CI greps these into the bench artifact).

use std::time::Instant;

use columbia_bench::BenchRecord;
use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_simnet::engine::simulate_reference_mailbox;
use columbia_simnet::fabric::{ClusterFabric, MptVersion};
use columbia_simnet::{simulate_with_faults, FaultPlan, Op};
use criterion::{criterion_group, criterion_main, Criterion};

/// Two BX2b nodes, `per_node` ranks each, ring exchange with compute.
fn ring_setup(per_node: usize) -> (Vec<Vec<Op>>, Vec<CpuId>, ClusterFabric) {
    let n = 2 * per_node;
    let fabric = ClusterFabric::new(
        ClusterConfig::uniform(NodeKind::Bx2b, 2),
        InterNodeFabric::InfiniBand,
        MptVersion::Beta,
        n as u32,
    );
    let cpus: Vec<CpuId> = (0..n)
        .map(|i| CpuId::new((i / per_node) as u32, (i % per_node) as u32))
        .collect();
    let programs: Vec<Vec<Op>> = (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for round in 0..10u64 {
                ops.push(Op::Compute(1e-4));
                ops.push(Op::Send {
                    to: (r + 1) % n,
                    bytes: 8192,
                    tag: round,
                });
                ops.push(Op::Recv {
                    from: (r + n - 1) % n,
                    tag: round,
                });
            }
            ops
        })
        .collect();
    (programs, cpus, fabric)
}

fn bench_fault_rates(c: &mut Criterion) {
    let (programs, cpus, fabric) = ring_setup(256);
    let healthy = simulate_with_faults(&programs, &cpus, &fabric, &FaultPlan::none())
        .unwrap()
        .makespan;

    let mut g = c.benchmark_group("faults");
    g.sample_size(10);
    for drop_pct in [0u32, 2, 5, 10, 20] {
        let plan = FaultPlan::with_drops(42, drop_pct as f64 / 100.0);
        let out = simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
        // The quantity under study: simulated-time inflation per rate.
        eprintln!(
            "faults/drop_{drop_pct}pct: makespan {:.3} ms, inflation {:.3}x, {} drops",
            out.makespan * 1e3,
            out.makespan / healthy,
            out.faults.drop_events,
        );
        g.bench_function(format!("ring_512_drop_{drop_pct}pct"), |b| {
            b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
        });
    }
    g.finish();
}

/// Mean wall nanoseconds per call of `f` over `iters` timed runs
/// (after `warmup` discarded ones).
fn time_ns(warmup: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The engine serial hot path, before and after the mailbox index:
/// 512 ranks, 10 ring rounds (~15K messages pushed/popped per run).
/// The `BENCH JSON` line records both sides and the speedup so the
/// comparison lands in the CI bench artifact.
fn bench_mailbox_fastpath(c: &mut Criterion) {
    let (programs, cpus, fabric) = ring_setup(256);
    let plan = FaultPlan::none();
    let indexed_out = simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
    let reference_out = simulate_reference_mailbox(&programs, &cpus, &fabric, &plan).unwrap();
    assert_eq!(
        indexed_out, reference_out,
        "mailbox implementations must agree before they are compared"
    );

    let reference_ns = time_ns(2, 10, || {
        simulate_reference_mailbox(&programs, &cpus, &fabric, &plan).unwrap();
    });
    let indexed_ns = time_ns(2, 10, || {
        simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
    });
    BenchRecord::new("mailbox_ring_512", "speedup", true)
        .metric("reference_ns_per_iter", reference_ns, 0)
        .metric("indexed_ns_per_iter", indexed_ns, 0)
        .metric("speedup", reference_ns / indexed_ns, 3)
        .emit();

    let mut g = c.benchmark_group("mailbox");
    g.sample_size(10);
    g.bench_function("ring_512_reference_hashmap", |b| {
        b.iter(|| simulate_reference_mailbox(&programs, &cpus, &fabric, &plan).unwrap());
    });
    g.bench_function("ring_512_indexed", |b| {
        b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
    });
    g.finish();
}

fn bench_fault_kinds(c: &mut Criterion) {
    let (programs, cpus, fabric) = ring_setup(256);
    let mut g = c.benchmark_group("fault_kinds");
    g.sample_size(10);
    let plans = [
        ("healthy", FaultPlan::none()),
        (
            "degraded_link",
            FaultPlan::none().degrade_link(NodeId(0), NodeId(1), 4.0, 0.25),
        ),
        ("slow_node", FaultPlan::none().slow_node(NodeId(1), 2.0)),
    ];
    for (name, plan) in plans {
        g.bench_function(name, |b| {
            b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mailbox_fastpath,
    bench_fault_rates,
    bench_fault_kinds
);
criterion_main!(benches);
