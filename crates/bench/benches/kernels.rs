//! Criterion benches over the real computational kernels.

use columbia_kernels::cg::{cg_solve, npb_matrix};
use columbia_kernels::complex::Complex;
use columbia_kernels::dgemm::{dgemm_blocked, dgemm_naive};
use columbia_kernels::fft::fft;
use columbia_kernels::grid::Grid3;
use columbia_kernels::lusgs::{forward_sweep_lex, LuSgsCoeffs};
use columbia_kernels::mg::v_cycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm");
    for n in [64usize, 128] {
        let a = vec![1.0e-3; n * n];
        let b = vec![2.0e-3; n * n];
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, &n| {
            let mut cm = vec![0.0; n * n];
            bch.iter(|| dgemm_naive(n, n, n, 1.0, &a, &b, 0.0, &mut cm));
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cm = vec![0.0; n * n];
            bch.iter(|| dgemm_blocked(n, n, n, 1.0, &a, &b, 0.0, &mut cm));
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [1024usize, 16384] {
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |bch, &n| {
            let mut data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), 0.0))
                .collect();
            bch.iter(|| fft(&mut data));
        });
    }
    g.finish();
}

fn bench_mg(c: &mut Criterion) {
    c.bench_function("mg/v_cycle_32", |b| {
        let v = Grid3::from_fn(32, 32, 32, |i, j, k| ((i + j + k) % 5) as f64 - 2.0);
        let mut u = Grid3::zeros(32, 32, 32);
        b.iter(|| v_cycle(&mut u, &v, 2, 2));
    });
}

fn bench_cg(c: &mut Criterion) {
    c.bench_function("cg/solve_25_iters_n3000", |b| {
        let a = npb_matrix(3000, 11, 7);
        let x = vec![1.0; 3000];
        let mut z = vec![0.0; 3000];
        b.iter(|| cg_solve(&a, &x, &mut z, 25));
    });
}

fn bench_lusgs(c: &mut Criterion) {
    c.bench_function("lusgs/forward_sweep_24", |b| {
        let rhs = Grid3::from_fn(24, 24, 24, |i, j, k| ((i * 3 + j + k) % 7) as f64);
        let mut u = Grid3::zeros(24, 24, 24);
        b.iter(|| forward_sweep_lex(&mut u, &rhs, LuSgsCoeffs::default()));
    });
}

criterion_group!(
    benches,
    bench_dgemm,
    bench_fft,
    bench_mg,
    bench_cg,
    bench_lusgs
);
criterion_main!(benches);
