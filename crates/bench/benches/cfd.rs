//! CFD application benches: Table 2, Table 3, Table 6 points plus the
//! real miniature solvers.

use columbia_ins3d::{iteration_seconds, AcSolver, Ins3dConfig};
use columbia_machine::cluster::InterNodeFabric;
use columbia_machine::node::NodeKind;
use columbia_overflowd::{step_times, OverflowConfig, OversetPair};
use columbia_runtime::compiler::CompilerVersion;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("ins3d_36x8_bx2b", |b| {
        b.iter(|| iteration_seconds(&Ins3dConfig::table2(NodeKind::Bx2b, 8)));
    });
    g.finish();
}

fn bench_table3_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("overflowd_256_3700", |b| {
        b.iter(|| step_times(&OverflowConfig::table3(NodeKind::Altix3700, 256)));
    });
    g.finish();
}

fn bench_table6_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("overflowd_2node_ib", |b| {
        b.iter(|| {
            step_times(&OverflowConfig {
                kind: NodeKind::Bx2b,
                procs: 508,
                threads: 1,
                nodes: 2,
                inter: InterNodeFabric::InfiniBand,
                compiler: CompilerVersion::V8_1,
            })
        });
    });
    g.finish();
}

fn bench_real_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfd_real");
    g.sample_size(10);
    g.bench_function("ac_subiteration_16", |b| {
        let mut s = AcSolver::duct(16, 10.0);
        b.iter(|| s.sub_iteration());
    });
    g.bench_function("overset_step_12", |b| {
        let mut p = OversetPair::new(12);
        b.iter(|| p.step());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_point,
    bench_table3_point,
    bench_table6_point,
    bench_real_solvers
);
criterion_main!(benches);
