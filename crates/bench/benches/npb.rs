//! NPB regeneration benches: Fig. 6 and Fig. 8 points.

use columbia_machine::node::NodeKind;
use columbia_npb::{gflops_per_cpu, NpbBenchmark, NpbClass, Paradigm};
use columbia_runtime::compiler::CompilerVersion;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig6_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for bench in [NpbBenchmark::Ft, NpbBenchmark::Mg] {
        g.bench_with_input(
            BenchmarkId::new("mpi_256", bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    gflops_per_cpu(
                        bench,
                        NpbClass::B,
                        NodeKind::Bx2b,
                        Paradigm::Mpi,
                        256,
                        CompilerVersion::V7_1,
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_fig8_compiler_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("mg_openmp_four_compilers", |b| {
        b.iter(|| {
            for v in CompilerVersion::ALL {
                let _ = gflops_per_cpu(
                    NpbBenchmark::Mg,
                    NpbClass::B,
                    NodeKind::Bx2b,
                    Paradigm::OpenMp,
                    64,
                    v,
                );
            }
        });
    });
    g.finish();
}

fn bench_real_class_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("npb_real");
    g.sample_size(10);
    g.bench_function("mg_class_s", |b| {
        b.iter(|| columbia_npb::mg::run_real(NpbClass::S))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig6_points,
    bench_fig8_compiler_sweep,
    bench_real_class_s
);
criterion_main!(benches);
