//! MD benches: real force evaluation and the Table 5 scaling model.

use columbia_md::scaling::weak_scaling_point;
use columbia_md::MdSystem;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_real_forces(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_real");
    g.sample_size(10);
    g.bench_function("cell_list_forces_864", |b| {
        let mut sys = MdSystem::fcc(6, 0.8, 0.5, 1);
        b.iter(|| sys.compute_forces_cells());
    });
    g.bench_function("verlet_step_864", |b| {
        let mut sys = MdSystem::fcc(6, 0.8, 0.5, 1);
        b.iter(|| sys.step(0.002));
    });
    g.finish();
}

fn bench_table5_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("weak_scaling_512", |b| {
        b.iter(|| weak_scaling_point(512));
    });
    g.finish();
}

criterion_group!(benches, bench_real_forces, bench_table5_point);
criterion_main!(benches);
