//! HPCC regeneration benches: Fig. 5 / Fig. 10 / §4.2 sweeps.

use columbia_hpcc::beff;
use columbia_hpcc::{dgemm, stream};
use columbia_machine::cluster::InterNodeFabric;
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::MptVersion;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5/in_node_sweep_bx2b", |b| {
        b.iter(|| beff::in_node_sweep(NodeKind::Bx2b, &beff::FIG5_CPUS));
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10/four_node_infiniband", |b| {
        b.iter(|| {
            beff::multi_node_sweep(
                4,
                InterNodeFabric::InfiniBand,
                MptVersion::Beta,
                &beff::FIG10_CPUS,
            )
        });
    });
}

fn bench_dgemm_stream_models(c: &mut Criterion) {
    c.bench_function("hpcc/dgemm_stream_stride_study", |b| {
        b.iter(|| {
            for kind in NodeKind::ALL {
                for stride in [1u32, 2, 4] {
                    let _ = dgemm::simulate(kind, stride);
                    let _ = stream::simulate(kind, 128, stride);
                }
            }
        });
    });
}

criterion_group!(benches, bench_fig5, bench_fig10, bench_dgemm_stream_models);
criterion_main!(benches);
