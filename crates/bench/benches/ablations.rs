//! Ablation benches for the design choices DESIGN.md calls out:
//! bin-packing vs round-robin grouping, cell list vs O(N²) MD forces,
//! pipelined (hyperplane) vs lexicographic LU-SGS, blocked vs naive
//! DGEMM, pinned vs unpinned placement.

use columbia_kernels::dgemm::{dgemm_blocked, dgemm_naive};
use columbia_kernels::grid::Grid3;
use columbia_kernels::lusgs::{forward_sweep_hyperplane, forward_sweep_lex, LuSgsCoeffs};
use columbia_md::MdSystem;
use columbia_npbmz::balance::{bin_pack, round_robin};
use columbia_npbmz::zones::{uneven_zones, MzClass};
use criterion::{criterion_group, criterion_main, Criterion};

fn ablation_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grouping");
    let zones = uneven_zones(MzClass::C);
    g.bench_function("bin_pack_64", |b| b.iter(|| bin_pack(&zones, 64)));
    g.bench_function("round_robin_64", |b| b.iter(|| round_robin(&zones, 64)));
    g.finish();
}

fn ablation_md_forces(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_md_forces");
    g.sample_size(10);
    g.bench_function("cell_list", |b| {
        let mut sys = MdSystem::fcc(6, 0.8, 0.5, 3);
        b.iter(|| sys.compute_forces_cells());
    });
    g.bench_function("naive_n2", |b| {
        let mut sys = MdSystem::fcc(6, 0.8, 0.5, 3);
        b.iter(|| sys.compute_forces_naive());
    });
    g.finish();
}

fn ablation_lusgs(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lusgs");
    g.sample_size(10);
    let rhs = Grid3::from_fn(32, 32, 32, |i, j, k| ((i + 2 * j + 3 * k) % 5) as f64);
    g.bench_function("lexicographic", |b| {
        let mut u = Grid3::zeros(32, 32, 32);
        b.iter(|| forward_sweep_lex(&mut u, &rhs, LuSgsCoeffs::default()));
    });
    g.bench_function("hyperplane_pipelined", |b| {
        let mut u = Grid3::zeros(32, 32, 32);
        b.iter(|| forward_sweep_hyperplane(&mut u, &rhs, LuSgsCoeffs::default()));
    });
    g.finish();
}

fn ablation_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dgemm");
    g.sample_size(10);
    let n = 192usize;
    let a = vec![1.0e-3; n * n];
    let bm = vec![2.0e-3; n * n];
    g.bench_function("naive", |b| {
        let mut cm = vec![0.0; n * n];
        b.iter(|| dgemm_naive(n, n, n, 1.0, &a, &bm, 0.0, &mut cm));
    });
    g.bench_function("blocked", |b| {
        let mut cm = vec![0.0; n * n];
        b.iter(|| dgemm_blocked(n, n, n, 1.0, &a, &bm, 0.0, &mut cm));
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_grouping,
    ablation_md_forces,
    ablation_lusgs,
    ablation_dgemm
);
criterion_main!(benches);
