//! Simulator-engine benches: raw event throughput of the
//! discrete-event core, plus the engine-scaling before/after comparison
//! (pair-class cost cache + monomorphized dispatch vs. the dynamic
//! uncached path), reported as a machine-readable `BENCH JSON` line so
//! CI can track the engine throughput trajectory and enforce the
//! speedup floor.

use std::time::Instant;

use columbia_bench::BenchRecord;
use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::{CachedFabric, ClusterFabric, MptVersion};
use columbia_simnet::fault::DEFAULT_MULTIPLEX_QUEUE_PENALTY;
use columbia_simnet::program::{ByteRule, Peer, ProgramSet, SpmdOp};
use columbia_simnet::{
    simulate, simulate_on, simulate_parallel_on, simulate_with_faults, ConnectionLimit,
    ConnectionPolicy, FaultPlan, Op,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("ring_512_ranks_10_rounds", |b| {
        let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
        let n = 512usize;
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|r| {
                let mut ops = Vec::new();
                for round in 0..10u64 {
                    ops.push(Op::Compute(1e-4));
                    ops.push(Op::Send {
                        to: (r + 1) % n,
                        bytes: 8192,
                        tag: round,
                    });
                    ops.push(Op::Recv {
                        from: (r + n - 1) % n,
                        tag: round,
                    });
                }
                ops
            })
            .collect();
        b.iter(|| simulate(&programs, &cpus, &fabric).unwrap());
    });
    g.bench_function("alltoall_1024_ranks", |b| {
        let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 2));
        let n = 1024usize;
        let cpus: Vec<CpuId> = (0..n)
            .map(|i| CpuId::new((i / 512) as u32, (i % 512) as u32))
            .collect();
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|_| {
                vec![
                    Op::Compute(1e-3),
                    Op::AllToAll {
                        bytes_per_pair: 1024,
                    },
                ]
            })
            .collect();
        b.iter(|| simulate(&programs, &cpus, &fabric).unwrap());
    });
    g.finish();
}

/// Minimum wall nanoseconds of a single call of `f` over `iters` timed
/// runs (after `warmup` discarded ones). Scheduling noise only ever
/// slows a run, so the per-iteration minimum is a far more stable
/// estimator than the mean for the speedup ratio the CI floor gates on.
fn time_ns(warmup: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// The engine hot loop before and after the pair-class cost cache,
/// monomorphized dispatch, and compact SPMD programs: a 2,048-rank ring
/// round-robined over four BX2b nodes on InfiniBand with the released
/// MPT, so every one of the ~20K messages per run crosses nodes and —
/// on the uncached path — re-evaluates the `powf`-laden penalty model
/// per message through a vtable. Outcomes are asserted bit-identical
/// before anything is timed; the `BENCH JSON` line lands in the CI
/// bench artifact, where the smoke step enforces the ≥1.5x floor.
fn bench_engine_scaling(c: &mut Criterion) {
    let n = 2048usize;
    let nodes = 4usize;
    let fabric = ClusterFabric::new(
        ClusterConfig::uniform(NodeKind::Bx2b, nodes as u32),
        InterNodeFabric::InfiniBand,
        MptVersion::Released,
        n as u32,
    );
    let cached = CachedFabric::new(fabric.clone());
    // Round-robin placement: rank r on node r mod 4, so every ring hop
    // crosses the inter-node fabric.
    let cpus: Vec<CpuId> = (0..n)
        .map(|r| CpuId::new((r % nodes) as u32, (r / nodes) as u32))
        .collect();
    let template: Vec<SpmdOp> = (0..10)
        .flat_map(|_| {
            [
                SpmdOp::Send {
                    to: Peer::RingOffset(1),
                    bytes: ByteRule::Uniform(8192),
                    tag: 0,
                },
                SpmdOp::Recv {
                    from: Peer::RingOffset(-1),
                    tag: 0,
                },
            ]
        })
        .collect();
    let set = ProgramSet::spmd(n, template);
    let programs = set.materialize();
    let plan = FaultPlan::none();

    let reference_out = simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
    let cached_out = simulate_on(&set, &cpus, &cached, &plan).unwrap();
    assert_eq!(
        reference_out, cached_out,
        "cached engine path must be bit-identical before it is timed"
    );

    let reference_ns = time_ns(3, 40, || {
        simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap();
    });
    let cached_ns = time_ns(3, 40, || {
        simulate_on(&set, &cpus, &cached, &plan).unwrap();
    });
    BenchRecord::new("engine_ring_2048", "speedup", true)
        .metric("reference_ns_per_iter", reference_ns, 0)
        .metric("cached_ns_per_iter", cached_ns, 0)
        .metric("speedup", reference_ns / cached_ns, 3)
        .emit();

    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    g.bench_function("ring_2048_reference_dyn_uncached", |b| {
        b.iter(|| simulate_with_faults(&programs, &cpus, &fabric, &plan).unwrap());
    });
    g.bench_function("ring_2048_cached_monomorphized", |b| {
        b.iter(|| simulate_on(&set, &cpus, &cached, &plan).unwrap());
    });
    g.finish();
}

/// PDES scaling curve on the full-Columbia workload: the twenty-node,
/// 10,240-rank SPMD run of the `columbia` experiment (3 rounds of ring
/// send/recv + node-pair exchange + allreduce, then a 1 MB broadcast
/// and barrier, under the §2 connection budget), simulated serially
/// and at 1/2/4/8 PDES threads. Bit-identity of the 4-thread outcome
/// is asserted before anything is timed. The `BENCH JSON` line reports
/// `speedup4` (serial time / 4-thread time) as the primary metric; CI
/// enforces the ≥1.8x floor and bench-compare gates the trajectory
/// against `ci/baseline/`. On a box with fewer cores the numbers are
/// honest (the spawn-per-round scope just runs partitions on the cores
/// it has) — which is exactly why the floor lives in CI, not here.
fn bench_pdes_scaling(_c: &mut Criterion) {
    let cluster = ClusterConfig::columbia();
    let ranks = cluster.total_cpus() as usize;
    let cpus: Vec<CpuId> = (0..cluster.nodes.len() as u32)
        .flat_map(|node| {
            let per = cluster.node_model(NodeId(node)).cpus;
            (0..per).map(move |c| CpuId::new(node, c))
        })
        .collect();
    let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
        cards_per_node: cluster.ib_cards_per_node,
        connections_per_card: cluster.ib_connections_per_card,
        policy: ConnectionPolicy::Multiplex {
            queue_penalty: DEFAULT_MULTIPLEX_QUEUE_PENALTY,
        },
    });
    let fabric = CachedFabric::new(ClusterFabric::new(
        cluster,
        InterNodeFabric::InfiniBand,
        MptVersion::Beta,
        ranks as u32,
    ));
    let template: Vec<SpmdOp> = {
        let mut t = Vec::new();
        for round in 0..3u64 {
            t.push(SpmdOp::Compute(2.0e-4));
            t.push(SpmdOp::Send {
                to: Peer::RingOffset(1),
                bytes: ByteRule::Uniform(8192),
                tag: round,
            });
            t.push(SpmdOp::Recv {
                from: Peer::RingOffset(-1),
                tag: round,
            });
            t.push(SpmdOp::Exchange {
                with: Peer::Xor(512),
                bytes: ByteRule::Uniform(32768),
                tag: 100 + round,
            });
            t.push(SpmdOp::AllReduce { bytes: 64 });
        }
        t.push(SpmdOp::Bcast {
            root: 0,
            bytes: 1 << 20,
        });
        t.push(SpmdOp::Barrier);
        t
    };
    let set = ProgramSet::spmd(ranks, template);

    let serial_out = simulate_on(&set, &cpus, &fabric, &plan).unwrap();
    let parallel_out = simulate_parallel_on(&set, &cpus, &fabric, &plan, 4).unwrap();
    assert_eq!(
        serial_out.makespan.to_bits(),
        parallel_out.makespan.to_bits(),
        "PDES path must be bit-identical before it is timed"
    );
    assert_eq!(
        serial_out.ranks.len(),
        parallel_out.ranks.len(),
        "PDES path must produce every rank"
    );
    for (r, (a, b)) in serial_out.ranks.iter().zip(&parallel_out.ranks).enumerate() {
        assert_eq!(
            a.total.to_bits(),
            b.total.to_bits(),
            "PDES rank {r} clock must match serial"
        );
    }

    let serial_ns = time_ns(1, 5, || {
        simulate_on(&set, &cpus, &fabric, &plan).unwrap();
    });
    let mut rec = BenchRecord::new("pdes_columbia_10240", "speedup4", true);
    rec = rec.metric("serial_ns_per_iter", serial_ns, 0);
    for threads in [2u32, 4, 8] {
        let t_ns = time_ns(1, 5, || {
            simulate_parallel_on(&set, &cpus, &fabric, &plan, threads as usize).unwrap();
        });
        rec = rec
            .metric(&format!("t{threads}_ns_per_iter"), t_ns, 0)
            .metric(&format!("speedup{threads}"), serial_ns / t_ns, 3);
    }
    rec.emit();
}

criterion_group!(
    benches,
    bench_engine,
    bench_engine_scaling,
    bench_pdes_scaling
);
criterion_main!(benches);
