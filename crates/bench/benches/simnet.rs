//! Simulator-engine benches: raw event throughput of the
//! discrete-event core.

use columbia_machine::cluster::{ClusterConfig, CpuId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::ClusterFabric;
use columbia_simnet::{simulate, Op};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("ring_512_ranks_10_rounds", |b| {
        let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1));
        let n = 512usize;
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|r| {
                let mut ops = Vec::new();
                for round in 0..10u64 {
                    ops.push(Op::Compute(1e-4));
                    ops.push(Op::Send {
                        to: (r + 1) % n,
                        bytes: 8192,
                        tag: round,
                    });
                    ops.push(Op::Recv {
                        from: (r + n - 1) % n,
                        tag: round,
                    });
                }
                ops
            })
            .collect();
        b.iter(|| simulate(&programs, &cpus, &fabric).unwrap());
    });
    g.bench_function("alltoall_1024_ranks", |b| {
        let fabric = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 2));
        let n = 1024usize;
        let cpus: Vec<CpuId> = (0..n)
            .map(|i| CpuId::new((i / 512) as u32, (i % 512) as u32))
            .collect();
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|_| {
                vec![
                    Op::Compute(1e-3),
                    Op::AllToAll {
                        bytes_per_pair: 1024,
                    },
                ]
            })
            .collect();
        b.iter(|| simulate(&programs, &cpus, &fabric).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
