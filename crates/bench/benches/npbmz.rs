//! NPB-MZ regeneration benches: Fig. 7, Fig. 9, Fig. 11 points.

use columbia_machine::cluster::InterNodeFabric;
use columbia_npbmz::bench::{run, MzBenchmark, MzRunConfig};
use columbia_npbmz::MzClass;
use columbia_runtime::pinning::Pinning;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig9_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("btmz_classc_64x4", |b| {
        b.iter(|| run(&MzRunConfig::new(MzBenchmark::BtMz, MzClass::C, 64, 4)));
    });
    g.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("spmz_unpinned_8x16", |b| {
        let mut cfg = MzRunConfig::new(MzBenchmark::SpMz, MzClass::C, 8, 16);
        cfg.pinning = Pinning::Unpinned;
        b.iter(|| run(&cfg));
    });
    g.finish();
}

fn bench_fig11_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("spmz_classe_ib_512", |b| {
        let mut cfg = MzRunConfig::new(MzBenchmark::SpMz, MzClass::E, 512, 1);
        cfg.nodes = 2;
        cfg.inter = InterNodeFabric::InfiniBand;
        b.iter(|| run(&cfg));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig9_point,
    bench_fig7_point,
    bench_fig11_point
);
criterion_main!(benches);
