//! CLI-level regression tests for the `repro` and `bench-compare`
//! binaries: stderr record ordering under degraded runs, `--analyze`
//! determinism and schema, and the bench gate's improved section.

use std::path::PathBuf;
use std::process::{Command, Output};

use serde_json::Value;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "columbia-cli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

/// The machine-readable `SWEEP JSON` record must be the *first* stderr
/// record for its experiment — emitted before the human stats lines,
/// before per-failure detail, and regardless of `--manifest` being
/// active while the run degrades (failed points, diagnostic-row
/// collation). A consumer that greps the prefix must never lose the
/// record to a degraded collation.
#[test]
fn sweep_json_leads_stderr_even_when_manifest_records_a_degraded_run() {
    let dir = temp_dir("sweep-json");
    let manifest = dir.join("manifest.json");
    // A 100µs per-point deadline against points that simulate for
    // milliseconds: every point degrades to a deadline failure — the
    // run is maximally degraded.
    let out = repro(&[
        "--exp",
        "table4",
        "--jobs",
        "1",
        "--point-deadline",
        "0.0001",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    // Failed points surface in the exit code...
    assert_eq!(out.status.code(), Some(3), "degraded run exits 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    let sweep_idx = lines
        .iter()
        .position(|l| l.starts_with("SWEEP JSON "))
        .unwrap_or_else(|| panic!("no SWEEP JSON line in stderr:\n{stderr}"));
    // ...but the machine-readable record still leads: the human stats
    // line, the failure details, and the manifest write all follow it.
    let human_idx = lines
        .iter()
        .position(|l| l.starts_with("table4:"))
        .expect("human stats line present");
    let wrote_idx = lines
        .iter()
        .position(|l| l.starts_with("wrote "))
        .expect("manifest written");
    assert!(sweep_idx < human_idx, "SWEEP JSON precedes human stats");
    assert!(sweep_idx < wrote_idx, "SWEEP JSON precedes the manifest");
    let rec: Value =
        serde_json::from_str(lines[sweep_idx].trim_start_matches("SWEEP JSON ").trim())
            .expect("SWEEP JSON parses");
    assert_eq!(
        rec.get("schema").and_then(Value::as_str),
        Some("columbia-sweep-stats-v1")
    );
    assert_eq!(
        rec.get("experiment").and_then(Value::as_str),
        Some("table4")
    );
    let failed = rec
        .get("stats")
        .and_then(|s| s.get("failed"))
        .and_then(Value::as_f64)
        .expect("stats.failed");
    assert!(failed >= 1.0, "the run really degraded: {rec}");
    // The degraded report still flowed into the manifest.
    let m: Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest).unwrap()).expect("manifest");
    let exps = m
        .get("experiments")
        .and_then(Value::as_array)
        .expect("experiments");
    assert_eq!(exps.len(), 1);
    assert!(
        exps[0]
            .get("stats")
            .and_then(|s| s.get("failed"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repro --analyze` output — the stdout report and the JSON export —
/// is byte-identical across `--jobs` values, the document carries the
/// `columbia-analysis-v1` schema, and every sim's critical path is
/// nonempty and accounts for its makespan.
#[test]
fn analyze_is_deterministic_and_schema_complete() {
    let dir = temp_dir("analyze");
    let run = |jobs: &str, file: &str| -> (Vec<u8>, Value) {
        let path = dir.join(file);
        let out = repro(&[
            "--exp",
            "table4",
            "--jobs",
            jobs,
            "--analyze",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = serde_json::from_str(&std::fs::read_to_string(&path).unwrap())
            .expect("analysis JSON parses");
        (out.stdout, doc)
    };
    let (stdout1, doc1) = run("1", "a1.json");
    let (stdout4, doc4) = run("4", "a4.json");
    assert_eq!(stdout1, stdout4, "stdout is jobs-independent");
    assert_eq!(
        serde_json::to_string(&doc1),
        serde_json::to_string(&doc4),
        "analysis export is jobs-independent"
    );
    assert_eq!(
        doc1.get("schema").and_then(Value::as_str),
        Some("columbia-analysis-v1")
    );
    let sims = doc1.get("sims").and_then(Value::as_array).expect("sims");
    assert!(!sims.is_empty(), "the experiment recorded simulations");
    for sim in sims {
        let makespan = sim.get("makespan").and_then(Value::as_f64).unwrap();
        let cp = sim.get("critical_path").expect("critical_path");
        let total = cp.get("total").and_then(Value::as_f64).unwrap();
        assert!(matches!(cp.get("truncated"), Some(Value::Bool(false))));
        assert!(
            (total - makespan).abs() <= 1e-9 * makespan.max(1.0),
            "critical path covers the makespan: {total} vs {makespan}"
        );
        assert!(!cp
            .get("segments")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
        assert!(sim.get("imbalance").is_some());
        assert!(sim.get("comm_matrix").is_some());
    }
    // The stdout report names the analysis table.
    let text = String::from_utf8_lossy(&stdout1);
    assert!(text.contains("bottleneck"), "analysis table on stdout");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `bench-compare` prints a clearly labeled "improved" section for
/// benches past the threshold in the good direction — and still exits
/// 0: improvements inform, only regressions gate.
#[test]
fn bench_compare_reports_improvements_and_passes() {
    use columbia_bench::BenchRecord;
    let dir = temp_dir("improved");
    let baseline = dir.join("baseline");
    let current = dir.join("current");
    std::fs::create_dir_all(&baseline).unwrap();
    std::fs::create_dir_all(&current).unwrap();
    let write = |dir: &PathBuf, rec: BenchRecord| {
        std::fs::write(
            dir.join(rec.manifest_file_name()),
            serde_json::to_string_pretty(&rec.manifest_value()),
        )
        .unwrap();
    };
    // One bench improved 50%, one within threshold.
    write(
        &baseline,
        BenchRecord::new("mailbox", "speedup", true).metric("speedup", 1.5, 3),
    );
    write(
        &baseline,
        BenchRecord::new("engine", "speedup", true).metric("speedup", 2.0, 3),
    );
    write(
        &current,
        BenchRecord::new("mailbox", "speedup", true).metric("speedup", 2.25, 3),
    );
    write(
        &current,
        BenchRecord::new("engine", "speedup", true).metric("speedup", 2.1, 3),
    );
    let out = Command::new(env!("CARGO_BIN_EXE_bench-compare"))
        .args([
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
            "--threshold",
            "0.2",
        ])
        .output()
        .expect("bench-compare runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "improvements pass: {stdout}");
    assert!(
        stdout.contains("improved (1 bench(es)"),
        "labeled improved section:\n{stdout}"
    );
    assert!(
        stdout.contains("improved  mailbox:") && stdout.contains("good direction"),
        "improvement detail:\n{stdout}"
    );
    assert!(
        !stdout.contains("improved  engine:"),
        "within-threshold moves are not improvements:\n{stdout}"
    );
    assert!(stdout.contains("bench-compare: OK"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
