//! `BENCH JSON` emission — one helper instead of N hand-formatted
//! `println!` templates.
//!
//! Every comparison bench reports the same way: a single stdout line
//!
//! ```text
//! BENCH JSON {"bench":"mailbox_ring_512","reference_ns_per_iter":...,"indexed_ns_per_iter":...,"speedup":1.83}
//! ```
//!
//! that CI greps into its bench artifact and floor-checks, plus —
//! when the `BENCH_MANIFEST_DIR` environment variable names a
//! directory — a `BENCH_<name>.json` manifest file
//! (`columbia-bench-manifest-v1`) that the `bench-compare` regression
//! gate ingests. Metric insertion order is preserved in both
//! renderings, so the line format is byte-compatible with the
//! hand-rolled templates this module replaced.

use serde_json::Value;

/// Schema tag of one bench manifest file.
pub const BENCH_MANIFEST_SCHEMA: &str = "columbia-bench-manifest-v1";

/// One bench result: named metrics in insertion order, one of them
/// designated *primary* — the scalar the regression gate trends.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    name: String,
    primary: String,
    higher_is_better: bool,
    metrics: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Start a record for bench `name` whose gated scalar is
    /// `primary` (`higher_is_better` tells the gate which direction is
    /// a regression). The primary metric must be added via
    /// [`BenchRecord::metric`] like any other.
    pub fn new(name: &str, primary: &str, higher_is_better: bool) -> Self {
        BenchRecord {
            name: name.to_string(),
            primary: primary.to_string(),
            higher_is_better,
            metrics: Vec::new(),
        }
    }

    /// Append metric `key` rounded to `decimals` fractional digits
    /// (the rounding the old hand-formatted lines applied — `{:.0}`
    /// for nanosecond counts, `{:.3}` for ratios).
    pub fn metric(mut self, key: &str, value: f64, decimals: u32) -> Self {
        let scale = 10f64.powi(decimals as i32);
        self.metrics
            .push((key.to_string(), (value * scale).round() / scale));
        self
    }

    /// The bench name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary metric's current value, if it was added.
    pub fn primary_value(&self) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == self.primary)
            .map(|(_, v)| *v)
    }

    /// The stdout line CI greps: `BENCH JSON {...}` with the bench
    /// name first and metrics in insertion order.
    pub fn line(&self) -> String {
        let mut doc = Value::object();
        doc.set("bench", Value::String(self.name.clone()));
        for (k, v) in &self.metrics {
            doc.set(k, Value::Number(*v));
        }
        format!("BENCH JSON {}", serde_json::to_string(&doc))
    }

    /// The manifest document `bench-compare` ingests.
    pub fn manifest_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("schema", Value::String(BENCH_MANIFEST_SCHEMA.into()));
        doc.set("bench", Value::String(self.name.clone()));
        doc.set("primary", Value::String(self.primary.clone()));
        doc.set("higher_is_better", Value::Bool(self.higher_is_better));
        let mut metrics = Value::object();
        for (k, v) in &self.metrics {
            metrics.set(k, Value::Number(*v));
        }
        doc.set("metrics", metrics);
        doc
    }

    /// Canonical manifest file name for this bench.
    pub fn manifest_file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Print the `BENCH JSON` line and, when `BENCH_MANIFEST_DIR` is
    /// set, write the manifest file into that directory (created if
    /// missing). Manifest write failures are reported on stderr but
    /// never fail the bench — a read-only CI scratch dir must not turn
    /// a measurement into an error.
    pub fn emit(&self) {
        println!("{}", self.line());
        let Ok(dir) = std::env::var("BENCH_MANIFEST_DIR") else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let dir = std::path::PathBuf::from(dir);
        let path = dir.join(self.manifest_file_name());
        let payload = serde_json::to_string_pretty(&self.manifest_value());
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, payload))
        {
            eprintln!("bench manifest write failed ({}): {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mailbox_record() -> BenchRecord {
        BenchRecord::new("mailbox_ring_512", "speedup", true)
            .metric("reference_ns_per_iter", 123456.7, 0)
            .metric("indexed_ns_per_iter", 67890.2, 0)
            .metric("speedup", 1.8183456, 3)
    }

    #[test]
    fn line_matches_the_historical_hand_format() {
        // Exactly what the old println! template produced for the
        // same inputs: `{:.0}` ns, `{:.3}` speedup, same field order.
        assert_eq!(
            mailbox_record().line(),
            "BENCH JSON {\"bench\":\"mailbox_ring_512\",\
             \"reference_ns_per_iter\":123457,\
             \"indexed_ns_per_iter\":67890,\"speedup\":1.818}"
        );
    }

    #[test]
    fn line_round_trips_through_the_parser() {
        let line = mailbox_record().line();
        let json = line.strip_prefix("BENCH JSON ").expect("prefix");
        let doc = serde_json::from_str(json).expect("line parses");
        assert_eq!(
            doc.get("bench").and_then(Value::as_str),
            Some("mailbox_ring_512")
        );
        assert_eq!(doc.get("speedup").and_then(Value::as_f64), Some(1.818));
        assert_eq!(
            doc.get("reference_ns_per_iter").and_then(Value::as_f64),
            Some(123457.0)
        );
    }

    #[test]
    fn manifest_carries_schema_primary_and_direction() {
        let doc = mailbox_record().manifest_value();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(BENCH_MANIFEST_SCHEMA)
        );
        assert_eq!(doc.get("primary").and_then(Value::as_str), Some("speedup"));
        assert!(matches!(
            doc.get("higher_is_better"),
            Some(Value::Bool(true))
        ));
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("speedup"))
                .and_then(Value::as_f64),
            Some(1.818)
        );
        assert_eq!(
            mailbox_record().manifest_file_name(),
            "BENCH_mailbox_ring_512.json"
        );
    }

    #[test]
    fn primary_value_reads_back_the_designated_metric() {
        assert_eq!(mailbox_record().primary_value(), Some(1.818));
        assert_eq!(
            BenchRecord::new("empty", "speedup", true).primary_value(),
            None
        );
    }
}
