//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro                       # run everything
//! repro --exp table2          # one experiment
//! repro --spec specs/f.toml   # a declarative sweep spec (repeatable)
//! repro --jobs 4              # fan sweep points across 4 threads
//! repro --sim-threads 4       # parallelize each simulation (PDES)
//! repro --json                # machine-readable output
//! repro --list                # experiment ids
//! repro --trace out.json      # capture a Chrome/Perfetto timeline
//! repro --metrics out.json    # dump fabric counters + CommProfiles
//! repro --analyze [out.json]  # critical-path bottleneck analysis
//!                             # (table on stdout; optional JSON file)
//! repro --manifest out.json   # write the canonical run manifest
//! repro --checkpoint-dir d    # persist completed sweep points under d/
//! repro --resume              # skip points already checkpointed
//! repro --point-deadline 30   # abandon any point running >30s (wall clock)
//! repro --max-retries 2       # retry panicked/timed-out points twice
//! ```
//!
//! `--spec file.toml` compiles a declarative sweep spec (`core::spec`,
//! language reference in DESIGN.md §14) into a plan and runs it in
//! place of a hard-coded experiment. The flag repeats; it is mutually
//! exclusive with `--exp`. Everything downstream composes unchanged:
//! `--jobs`, the resilience flags (checkpoints key on the spec's file
//! stem), `--trace`/`--metrics`/`--analyze`, and `--manifest` — whose
//! entry for a spec run gains a stable `spec` object carrying the
//! FNV-128 content hash of the spec bytes and the resolved point
//! count. A spec that fails to parse or validate prints one
//! `path:line:col: message` diagnostic (with a "did you mean" hint for
//! unknown keys) and exits 2, before anything runs.
//!
//! `--jobs N` runs each experiment's sweep points on an N-thread
//! work-stealing pool (default: the machine's available parallelism;
//! `--jobs 1` is the plain serial path). Collation is deterministic,
//! so the output is byte-identical for every N — CI diffs `--jobs 2`
//! against `--jobs 1` as a gate.
//!
//! `--sim-threads N` parallelizes *within* each simulation: the
//! conservative PDES tier (`columbia_simnet::pdes`) partitions ranks
//! by node and synchronizes on the fabric's minimum cross-node
//! latency. Orthogonal to `--jobs` (which fans *across* sweep
//! points): `--jobs` wins when a sweep has many points, `--sim-threads`
//! when one simulation dominates (the 10,240-rank full-Columbia run).
//! Results are bit-identical at any value — CI diffs `--sim-threads 4`
//! against the serial golden. Overrides a spec's `[defaults]
//! sim_threads` key; default 1 (serial engine).
//!
//! `--trace` and `--metrics` install the global trace sink
//! (`columbia_obs::sink`) before running the selected experiments:
//! every simulation they execute is recorded (per-rank spans, fabric
//! counters, compute/comm/wait attribution) and exported when the run
//! finishes. Load the trace file at <https://ui.perfetto.dev> — one
//! process per simulation, one CPU track and one net track per rank.
//! `--trace` additionally opens a host-telemetry capture
//! (`columbia_obs::host`), so the export carries one extra process of
//! **wall-clock** tracks: one lane per pool worker (job spans, steal
//! instants) plus a checkpoint-store lane (save/load activity) —
//! real executor occupancy next to the simulated timelines.
//!
//! `--analyze` records the selected experiments like `--trace` does,
//! then runs the simulated-time performance analyzer
//! (`columbia_obs::analysis`) over every captured simulation: the
//! causal event graph is walked backward from the makespan to extract
//! the critical path, its length attributed to compute / send /
//! recv-wait / collective / fault-retransmit per rank and per node,
//! alongside load-imbalance statistics and the rank-pair communication
//! matrix. The result prints as one more report on stdout (a table per
//! simulation naming its bottleneck) and — when a path is given —
//! exports as a `columbia-analysis-v1` JSON document. Combined with
//! `--trace`, the timeline gains Perfetto flow arrows threading the
//! critical path through the rank tracks. The analysis is a pure
//! function of the deterministic capture, so its output is
//! byte-identical for every `--jobs` value.
//!
//! `--manifest` writes the canonical machine-readable record of the
//! run (`columbia-run-manifest-v1`): experiments with plan
//! fingerprints and report content hashes, jobs, resilience options,
//! per-experiment sweep stats, and — under the declared-volatile key —
//! wall time, git revision, and host executor metrics. Identical runs
//! produce byte-identical manifests modulo that `volatile` key.
//!
//! Any of `--checkpoint-dir`, `--resume`, `--point-deadline`, or
//! `--max-retries` switches to the **resilient** executor
//! (`SweepPlan::run_resilient`): point panics and deadline overruns
//! degrade to diagnostic rows instead of aborting the run, completed
//! points are checkpointed per experiment under
//! `<checkpoint-dir>/<exp>/`, and `--resume` serves checkpointed
//! points without re-running them. Resume/retry statistics go to
//! stderr only — stdout stays byte-identical to an uninterrupted run,
//! which is what the CI resume smoke gate diffs against the golden.

use std::time::{Duration, Instant};

use columbia::experiments::{failure_report, plan, Experiment};
use columbia::manifest::{self, ManifestBuilder, ResilienceSummary, Volatile};
use columbia::obs::{
    analyze, chrome_trace_with_flows, chrome_trace_with_host, host, sink, Analysis, CriticalPath,
    ANALYSIS_SCHEMA,
};
use columbia::par;
use columbia::spec::{load_and_compile, spec_hash};
use columbia::{analysis_report, PointStore, ResilienceOptions};
use serde_json::Value;

/// Parse `--flag <value>` out of the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

/// Parse every occurrence of `--flag <value>` (for repeatable flags).
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => out.push(v.clone()),
                _ => {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                }
            }
        }
    }
    out
}

/// One unit of work: a named sweep plan, either a hard-coded
/// experiment or a compiled `--spec` file (which carries its content
/// hash for the manifest).
struct Job {
    name: String,
    plan: columbia::SweepPlan,
    spec_content_hash: Option<String>,
}

/// Compile one `--spec` file into a job, or print the typed diagnostic
/// (`path:line:col: message`, with "did you mean" hints for unknown
/// keys) and exit 2 — same contract as any other bad command line,
/// before anything runs.
fn spec_job(path_str: &str) -> Job {
    let path = std::path::Path::new(path_str);
    let plan = load_and_compile(path).unwrap_or_else(|e| {
        if e.position().is_some() {
            // `SpecError` displays as `line:col: message`; prefix the
            // file so the diagnostic is jump-to-able.
            eprintln!("{path_str}:{e}");
        } else {
            eprintln!("{e}");
        }
        std::process::exit(2);
    });
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("{path_str}: {e}");
        std::process::exit(2);
    });
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path_str.to_string());
    Job {
        name,
        plan,
        spec_content_hash: Some(spec_hash(&bytes)),
    }
}

fn exp_job(exp: Experiment) -> Job {
    Job {
        name: exp.name().to_string(),
        plan: plan(exp),
        spec_content_hash: None,
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    let run_start = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--list") {
        for e in Experiment::ALL {
            println!("{}", e.name());
        }
        return;
    }
    let trace_path = flag_value(&args, "--trace");
    let metrics_path = flag_value(&args, "--metrics");
    let manifest_path = flag_value(&args, "--manifest");
    // `--analyze` takes an *optional* value: alone it prints the
    // analysis report, with a path it also writes the JSON document.
    let analyze_to: Option<Option<String>> = args
        .iter()
        .position(|a| a == "--analyze")
        .map(|i| args.get(i + 1).filter(|v| !v.starts_with("--")).cloned());
    let analyzing = analyze_to.is_some();
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(j) if j >= 1 => j,
            _ => {
                eprintln!("--jobs requires a thread count >= 1");
                std::process::exit(2);
            }
        },
        None => par::available_parallelism(),
    };
    let sim_threads_flag = match args.iter().position(|a| a == "--sim-threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(t) if t >= 1 => Some(t),
            _ => {
                eprintln!("--sim-threads requires a thread count >= 1");
                std::process::exit(2);
            }
        },
        None => None,
    };

    // Resilience flags: any of them selects the resilient executor.
    let checkpoint_dir = flag_value(&args, "--checkpoint-dir");
    let resume = args.iter().any(|a| a == "--resume");
    let point_deadline = flag_value(&args, "--point-deadline").map(|v| match v.parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => Duration::from_secs_f64(s),
        _ => {
            eprintln!("--point-deadline requires a positive number of seconds");
            std::process::exit(2);
        }
    });
    let max_retries = flag_value(&args, "--max-retries").map(|v| match v.parse::<u32>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("--max-retries requires a non-negative integer");
            std::process::exit(2);
        }
    });
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir (where would the checkpoints be?)");
        std::process::exit(2);
    }
    let resilient =
        checkpoint_dir.is_some() || resume || point_deadline.is_some() || max_retries.is_some();

    let spec_paths = flag_values(&args, "--spec");
    let exp_arg = args.iter().position(|a| a == "--exp");
    if exp_arg.is_some() && !spec_paths.is_empty() {
        eprintln!("--exp and --spec are mutually exclusive (a spec *is* the experiment)");
        std::process::exit(2);
    }
    // Compile every spec before running anything: a typo in the third
    // spec should not cost the first two's simulation time.
    let selected: Vec<Job> = if !spec_paths.is_empty() {
        spec_paths.iter().map(|p| spec_job(p)).collect()
    } else {
        match exp_arg {
            Some(i) => {
                let name = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("--exp requires an experiment id (see --list)");
                    std::process::exit(2);
                });
                match Experiment::parse(name) {
                    Some(e) => vec![exp_job(e)],
                    None => {
                        eprintln!("unknown experiment '{name}' (see --list)");
                        std::process::exit(2);
                    }
                }
            }
            None => Experiment::ALL.iter().copied().map(exp_job).collect(),
        }
    };
    let collecting = trace_path.is_some() || metrics_path.is_some() || analyzing;
    if collecting {
        sink::install();
    }
    // Host (wall-clock) telemetry rides along whenever the run's
    // execution is being recorded: the trace export gains per-worker
    // host tracks, the manifest gains executor metrics.
    if trace_path.is_some() || manifest_path.is_some() {
        host::enable();
    }
    let mut manifest_builder = manifest_path.as_ref().map(|_| {
        ManifestBuilder::new(
            "repro",
            jobs,
            &ResilienceSummary {
                enabled: resilient,
                resume,
                max_retries: max_retries.unwrap_or(0),
                deadline: point_deadline,
                checkpoint_dir: checkpoint_dir.clone(),
            },
        )
    });
    let mut failed_points = 0usize;
    let mut manifest_sim_threads = 1usize;
    for job in selected {
        let Job {
            name,
            plan: sweep_plan,
            spec_content_hash,
        } = job;
        // Per-simulation PDES threads: CLI beats the spec's
        // `[defaults] sim_threads`, which beats serial. Set before the
        // job runs; the engine consults the global at dispatch.
        let sim_threads = sim_threads_flag.or(sweep_plan.sim_threads).unwrap_or(1);
        columbia::simnet::set_sim_threads(sim_threads);
        manifest_sim_threads = manifest_sim_threads.max(sim_threads);
        let fingerprint = sweep_plan.fingerprint();
        let points = sweep_plan.len();
        let mut exp_stats = None;
        let report = if resilient {
            // One store subdirectory per experiment (or spec stem), so
            // different plans' entries never share a namespace on disk.
            let store = checkpoint_dir.as_ref().map(|dir| {
                let path = std::path::Path::new(dir).join(&name);
                PointStore::open(path).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                })
            });
            let opts = ResilienceOptions {
                deadline: point_deadline,
                max_retries: max_retries.unwrap_or(0),
                store,
                resume,
                experiment: Some(name.clone()),
                ..ResilienceOptions::default()
            };
            let outcome = sweep_plan.run_resilient_with_jobs(jobs, opts);
            // Stats are stderr-only: stdout must stay byte-identical
            // to a plain run so resume can be diffed against goldens.
            let s = outcome.stats;
            exp_stats = Some(s);
            // Machine-readable first (one stable line), human text
            // after — scripts grep the prefix, people read the rest.
            // Emitted from the stats alone, before anything touches
            // `outcome.report`: a degraded collation (failed points,
            // collator panic note) or manifest recording must never
            // suppress or reorder this record.
            let mut rec = Value::object();
            rec.set("schema", Value::String("columbia-sweep-stats-v1".into()));
            rec.set("experiment", Value::String(name.clone()));
            rec.set("stats", s.to_value());
            eprintln!("SWEEP JSON {}", serde_json::to_string(&rec));
            eprintln!(
                "{}: {} point(s), {} resumed, {} retried, {} failed",
                name, s.points, s.resumed, s.retries, s.failed
            );
            for failure in &outcome.failures {
                eprintln!("  {failure}");
            }
            if s.checkpoint_errors > 0 {
                eprintln!("  {} checkpoint write(s) failed", s.checkpoint_errors);
            }
            failed_points += s.failed;
            outcome.report
        } else {
            sweep_plan
                .run_with_jobs(jobs)
                .unwrap_or_else(|err| failure_report(&name, &err))
        };
        if let Some(builder) = manifest_builder.as_mut() {
            match &spec_content_hash {
                Some(h) => builder.record_spec_experiment(
                    &name,
                    fingerprint,
                    points,
                    &report,
                    exp_stats.as_ref(),
                    h,
                ),
                None => builder.record_experiment(
                    &name,
                    fingerprint,
                    points,
                    &report,
                    exp_stats.as_ref(),
                ),
            }
        }
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.to_text());
        }
    }
    // Drain the host capture once; the trace export and the manifest
    // both read from it.
    let host_report = host::take();
    if collecting {
        let bundles = sink::take();
        eprintln!("captured {} simulation(s)", bundles.len());
        // The analyzer is a pure function of the canonically-ordered
        // bundles, so everything derived below is identical for every
        // `--jobs` value.
        let analyses: Vec<(String, Analysis)> = if analyzing {
            bundles
                .iter()
                .map(|b| (b.label.clone(), analyze(b)))
                .collect()
        } else {
            Vec::new()
        };
        if let Some(path) = trace_path {
            let doc = if analyzing {
                // Critical-path hops become Perfetto flow arrows
                // threading through the rank tracks.
                let paths: Vec<CriticalPath> = analyses
                    .iter()
                    .map(|(_, a)| a.critical_path.clone())
                    .collect();
                chrome_trace_with_flows(&bundles, host_report.as_ref(), &paths)
            } else {
                chrome_trace_with_host(&bundles, host_report.as_ref())
            };
            write_or_die(&path, &serde_json::to_string(&doc));
        }
        if let Some(json_path) = analyze_to {
            let report = analysis_report(
                "Analyze",
                "critical-path bottleneck attribution per captured simulation",
                &analyses,
            );
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{}", report.to_text());
            }
            if let Some(path) = json_path {
                let mut doc = Value::object();
                doc.set("schema", Value::String(ANALYSIS_SCHEMA.into()));
                doc.set(
                    "sims",
                    Value::Array(
                        analyses
                            .iter()
                            .map(|(label, a)| {
                                let mut o = a.to_value();
                                o.set("label", Value::String(label.clone()));
                                o
                            })
                            .collect(),
                    ),
                );
                write_or_die(&path, &serde_json::to_string_pretty(&doc));
            }
        }
        if let Some(path) = metrics_path {
            let mut doc = Value::object();
            doc.set(
                "sims",
                Value::Array(
                    bundles
                        .iter()
                        .map(|b| {
                            let mut o = Value::object();
                            o.set("label", Value::String(b.label.clone()));
                            o.set("metrics", b.metrics.to_value());
                            o.set("profile", b.profile.to_value());
                            o
                        })
                        .collect(),
                ),
            );
            write_or_die(&path, &serde_json::to_string_pretty(&doc));
        }
    }
    if let (Some(path), Some(builder)) = (manifest_path, manifest_builder) {
        let m = builder.finish(&Volatile {
            wall_time_seconds: run_start.elapsed().as_secs_f64(),
            git_rev: manifest::git_rev(),
            host_metrics: host_report.as_ref().map(|r| r.metrics.to_value()),
            sim_threads: manifest_sim_threads,
        });
        write_or_die(&path, &m.to_string_pretty());
    }
    if failed_points > 0 {
        // Reports were still produced (with diagnostic rows), but the
        // campaign is incomplete; say so in the exit code.
        std::process::exit(3);
    }
}
