//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro                       # run everything
//! repro --exp table2          # one experiment
//! repro --jobs 4              # fan sweep points across 4 threads
//! repro --json                # machine-readable output
//! repro --list                # experiment ids
//! repro --trace out.json      # capture a Chrome/Perfetto timeline
//! repro --metrics out.json    # dump fabric counters + CommProfiles
//! ```
//!
//! `--jobs N` runs each experiment's sweep points on an N-thread
//! work-stealing pool (default: the machine's available parallelism;
//! `--jobs 1` is the plain serial path). Collation is deterministic,
//! so the output is byte-identical for every N — CI diffs `--jobs 2`
//! against `--jobs 1` as a gate.
//!
//! `--trace` and `--metrics` install the global trace sink
//! (`columbia_obs::sink`) before running the selected experiments:
//! every simulation they execute is recorded (per-rank spans, fabric
//! counters, compute/comm/wait attribution) and exported when the run
//! finishes. Load the trace file at <https://ui.perfetto.dev> — one
//! process per simulation, one CPU track and one net track per rank.

use columbia::experiments::{run_with_jobs, Experiment};
use columbia::obs::{chrome_trace, sink};
use columbia::par;
use serde_json::Value;

/// Parse `--flag <value>` out of the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("{flag} requires a file path");
            std::process::exit(2);
        }
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--list") {
        for e in Experiment::ALL {
            println!("{}", e.name());
        }
        return;
    }
    let trace_path = flag_value(&args, "--trace");
    let metrics_path = flag_value(&args, "--metrics");
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(j) if j >= 1 => j,
            _ => {
                eprintln!("--jobs requires a thread count >= 1");
                std::process::exit(2);
            }
        },
        None => par::available_parallelism(),
    };
    let selected: Vec<Experiment> = match args.iter().position(|a| a == "--exp") {
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--exp requires an experiment id (see --list)");
                std::process::exit(2);
            });
            match Experiment::parse(name) {
                Some(e) => vec![e],
                None => {
                    eprintln!("unknown experiment '{name}' (see --list)");
                    std::process::exit(2);
                }
            }
        }
        None => Experiment::ALL.to_vec(),
    };
    let collecting = trace_path.is_some() || metrics_path.is_some();
    if collecting {
        sink::install();
    }
    for exp in selected {
        let report = run_with_jobs(exp, jobs);
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.to_text());
        }
    }
    if !collecting {
        return;
    }
    let bundles = sink::take();
    eprintln!("captured {} simulation(s)", bundles.len());
    if let Some(path) = trace_path {
        let doc = chrome_trace(&bundles);
        write_or_die(&path, &serde_json::to_string(&doc));
    }
    if let Some(path) = metrics_path {
        let mut doc = Value::object();
        doc.set(
            "sims",
            Value::Array(
                bundles
                    .iter()
                    .map(|b| {
                        let mut o = Value::object();
                        o.set("label", Value::String(b.label.clone()));
                        o.set("metrics", b.metrics.to_value());
                        o.set("profile", b.profile.to_value());
                        o
                    })
                    .collect(),
            ),
        );
        write_or_die(&path, &serde_json::to_string_pretty(&doc));
    }
}
