//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro                 # run everything
//! repro --exp table2    # one experiment
//! repro --json          # machine-readable output
//! repro --list          # experiment ids
//! ```

use columbia::experiments::{run, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--list") {
        for e in Experiment::ALL {
            println!("{}", e.name());
        }
        return;
    }
    let selected: Vec<Experiment> = match args.iter().position(|a| a == "--exp") {
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--exp requires an experiment id (see --list)");
                std::process::exit(2);
            });
            match Experiment::parse(name) {
                Some(e) => vec![e],
                None => {
                    eprintln!("unknown experiment '{name}' (see --list)");
                    std::process::exit(2);
                }
            }
        }
        None => Experiment::ALL.to_vec(),
    };
    for exp in selected {
        let report = run(exp);
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.to_text());
        }
    }
}
