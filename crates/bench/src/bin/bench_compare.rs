//! `bench-compare` — the bench-trajectory regression gate.
//!
//! ```text
//! bench-compare --baseline ci/baseline --current bench-manifests
//! bench-compare --baseline ci/baseline --current bench-manifests --threshold 0.1
//! ```
//!
//! Loads `columbia-bench-manifest-v1` files from both directories and
//! compares each baseline bench's primary metric against the latest
//! current sample (see `columbia_bench::compare` for the exact rules:
//! direction-aware threshold, missing-bench = failure, unbaselined
//! benches informational). A bench that moved past the threshold in
//! the *good* direction prints under a labeled `improved` section —
//! the committed baseline is stale — without affecting the verdict.
//! Exit codes:
//!
//! * `0` — every baseline bench within threshold (improvements
//!   included);
//! * `1` — at least one regression (threshold crossed or bench
//!   missing);
//! * `2` — usage or I/O error (unreadable directory, corrupt
//!   manifest).

use std::path::PathBuf;

use columbia_bench::{compare, load_dir};

fn usage() -> ! {
    eprintln!(
        "usage: bench-compare --baseline <dir> --current <dir> [--threshold <fraction>]\n\
         default threshold: 0.2 (a 20% move in the bad direction fails)"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let Some(baseline_dir) = flag_value(&args, "--baseline") else {
        usage()
    };
    let Some(current_dir) = flag_value(&args, "--current") else {
        usage()
    };
    let threshold = match flag_value(&args, "--threshold") {
        None => 0.2,
        Some(t) => match t.parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => v,
            _ => {
                eprintln!("--threshold must be a non-negative fraction (e.g. 0.2)");
                std::process::exit(2);
            }
        },
    };

    let load = |dir: &str| {
        load_dir(&PathBuf::from(dir)).unwrap_or_else(|e| {
            eprintln!("bench-compare: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&baseline_dir);
    let current = load(&current_dir);
    if baseline.is_empty() {
        eprintln!("bench-compare: no manifests in baseline dir {baseline_dir}");
        std::process::exit(2);
    }

    let out = compare(&baseline, &current, threshold);
    for trend in &out.trends {
        println!("trend  {trend}");
    }
    for row in &out.rows {
        println!("check  {row}");
    }
    for bench in &out.unbaselined {
        println!("note   {bench}: no committed baseline (not gated)");
    }
    // Improvements never gate, but a baseline refresh should be a
    // deliberate act — make stale baselines visible in the CI log.
    if !out.improvements.is_empty() {
        println!(
            "improved ({} bench(es) past the threshold in the good direction):",
            out.improvements.len()
        );
        for i in &out.improvements {
            println!("improved  {i}");
        }
    }
    if out.passed() {
        println!(
            "bench-compare: OK ({} bench(es) within threshold, {} improved)",
            out.rows.len(),
            out.improvements.len()
        );
        return;
    }
    for r in &out.regressions {
        eprintln!("REGRESSION {r}");
    }
    eprintln!(
        "bench-compare: FAILED ({} regression(s) at {:.0}% threshold)",
        out.regressions.len(),
        threshold * 100.0
    );
    std::process::exit(1);
}
