//! Bench-trajectory analysis and the regression gate behind the
//! `bench-compare` binary.
//!
//! Input is directories of `BENCH_*.json` manifests
//! (`columbia-bench-manifest-v1`, written by
//! [`crate::record::BenchRecord::emit`]). A *baseline* directory holds
//! the committed reference values; a *current* directory holds the
//! manifests the run under test produced. The gate compares each
//! baseline bench's primary metric against the current run:
//!
//! * higher-is-better metrics regress when
//!   `current < baseline * (1 - threshold)`;
//! * lower-is-better metrics regress when
//!   `current > baseline * (1 + threshold)`;
//! * a baseline bench missing from the current run is a regression
//!   outright (a silently-dropped bench must not pass the gate);
//! * current benches absent from the baseline are reported but never
//!   gate — new benches land first, get baselined second;
//! * a move past the threshold in the *good* direction is an
//!   [`Improvement`]: reported (the committed baseline is stale and
//!   worth refreshing) but always passing.
//!
//! Baselines store machine-independent *ratios* (speedups, overhead
//! percentages), never raw nanoseconds: a CI runner two generations
//! newer than the machine that wrote the baseline still produces the
//! same speedup, but not the same ns/iter.
//!
//! When a directory holds several samples of one bench (a history of
//! manifests), samples are ordered by file name — name history files
//! sortably (`0001_BENCH_x.json`, …) — the latest is the value
//! compared, and the whole trajectory is printed as the trend.

use std::path::Path;

use serde_json::Value;

use crate::record::BENCH_MANIFEST_SCHEMA;

/// One parsed bench manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSample {
    /// File name the sample came from (orders a trajectory).
    pub file: String,
    /// Bench name.
    pub bench: String,
    /// Name of the gated metric.
    pub primary: String,
    /// Direction: `true` when larger primary values are better.
    pub higher_is_better: bool,
    /// The primary metric's value.
    pub value: f64,
}

/// Why the gate failed for one bench.
#[derive(Debug, Clone, PartialEq)]
pub enum Regression {
    /// The primary metric crossed the threshold in the bad direction.
    Threshold {
        /// Bench name.
        bench: String,
        /// Committed reference value.
        baseline: f64,
        /// Value the run under test produced.
        current: f64,
        /// Fractional change in the bad direction (e.g. 0.25 = 25%).
        change: f64,
    },
    /// The bench exists in the baseline but produced no manifest.
    Missing {
        /// Bench name.
        bench: String,
    },
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regression::Threshold {
                bench,
                baseline,
                current,
                change,
            } => write!(
                f,
                "{bench}: {current} vs baseline {baseline} ({:+.1}% in the bad direction)",
                change * 100.0
            ),
            Regression::Missing { bench } => {
                write!(
                    f,
                    "{bench}: in the baseline but missing from the current run"
                )
            }
        }
    }
}

/// One bench that moved past the threshold in the *good* direction —
/// the baseline is stale and worth refreshing.
#[derive(Debug, Clone, PartialEq)]
pub struct Improvement {
    /// Bench name.
    pub bench: String,
    /// Committed reference value.
    pub baseline: f64,
    /// Value the run under test produced.
    pub current: f64,
    /// Fractional change in the good direction (e.g. 0.25 = 25%).
    pub change: f64,
}

impl std::fmt::Display for Improvement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} vs baseline {} ({:+.1}% in the good direction — consider refreshing the baseline)",
            self.bench,
            self.current,
            self.baseline,
            self.change * 100.0
        )
    }
}

/// The gate's verdict plus everything it looked at.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// One line per compared bench ("bench: baseline → current ...").
    pub rows: Vec<String>,
    /// Per-bench trajectories for multi-sample directories.
    pub trends: Vec<String>,
    /// Current benches with no committed baseline (informational).
    pub unbaselined: Vec<String>,
    /// Benches past the threshold in the good direction
    /// (informational — the gate still passes).
    pub improvements: Vec<Improvement>,
    /// Every gate failure.
    pub regressions: Vec<Regression>,
}

impl CompareOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn parse_manifest(file: &str, text: &str) -> Result<BenchSample, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("{file}: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some(BENCH_MANIFEST_SCHEMA) {
        return Err(format!("{file}: not a {BENCH_MANIFEST_SCHEMA} manifest"));
    }
    let field = |k: &str| -> Result<String, String> {
        doc.get(k)
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| format!("{file}: missing string field '{k}'"))
    };
    let bench = field("bench")?;
    let primary = field("primary")?;
    let higher_is_better = match doc.get("higher_is_better") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(format!("{file}: missing bool field 'higher_is_better'")),
    };
    let value = doc
        .get("metrics")
        .and_then(|m| m.get(&primary))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{file}: metrics.{primary} missing or not a number"))?;
    if !value.is_finite() {
        return Err(format!("{file}: metrics.{primary} is not finite"));
    }
    Ok(BenchSample {
        file: file.to_string(),
        bench,
        primary,
        higher_is_better,
        value,
    })
}

/// Load every `BENCH_*.json` (or any `*.json` whose schema matches)
/// manifest under `dir`, sorted by file name. Unparseable manifests
/// are hard errors — a corrupt baseline must fail the gate loudly, not
/// vanish from it.
pub fn load_dir(dir: &Path) -> Result<Vec<BenchSample>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.ends_with(".json"))
        .collect();
    files.sort();
    let mut samples = Vec::new();
    for file in files {
        let path = dir.join(&file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        samples.push(parse_manifest(&file, &text)?);
    }
    Ok(samples)
}

/// The latest sample per bench, in first-seen bench order (input is
/// file-name sorted, so "latest" is the lexicographically last file).
fn latest_per_bench(samples: &[BenchSample]) -> Vec<&BenchSample> {
    let mut order: Vec<&str> = Vec::new();
    for s in samples {
        if !order.contains(&s.bench.as_str()) {
            order.push(&s.bench);
        }
    }
    order
        .iter()
        .filter_map(|b| samples.iter().rfind(|s| s.bench == *b))
        .collect()
}

/// Run the gate: compare the latest current sample of every baseline
/// bench against its baseline at `threshold` (a fraction, e.g. 0.2 =
/// 20%).
pub fn compare(
    baseline: &[BenchSample],
    current: &[BenchSample],
    threshold: f64,
) -> CompareOutcome {
    let mut out = CompareOutcome::default();

    // Trajectories for any bench with more than one current sample.
    let mut seen: Vec<&str> = Vec::new();
    for s in current {
        if seen.contains(&s.bench.as_str()) {
            continue;
        }
        seen.push(&s.bench);
        let series: Vec<&BenchSample> = current.iter().filter(|x| x.bench == s.bench).collect();
        if series.len() > 1 {
            let path: Vec<String> = series.iter().map(|x| x.value.to_string()).collect();
            out.trends
                .push(format!("{} {}: {}", s.bench, s.primary, path.join(" -> ")));
        }
    }

    let current_latest = latest_per_bench(current);
    for base in latest_per_bench(baseline) {
        let Some(cur) = current_latest.iter().find(|c| c.bench == base.bench) else {
            out.regressions.push(Regression::Missing {
                bench: base.bench.clone(),
            });
            continue;
        };
        // Change in the *bad* direction, as a fraction of baseline.
        let change = if base.higher_is_better {
            (base.value - cur.value) / base.value
        } else {
            (cur.value - base.value) / base.value
        };
        let arrow = if base.higher_is_better { ">=" } else { "<=" };
        let bound = if base.higher_is_better {
            base.value * (1.0 - threshold)
        } else {
            base.value * (1.0 + threshold)
        };
        out.rows.push(format!(
            "{} {}: baseline {} current {} (need {arrow} {bound:.4})",
            base.bench, base.primary, base.value, cur.value
        ));
        if change > threshold {
            out.regressions.push(Regression::Threshold {
                bench: base.bench.clone(),
                baseline: base.value,
                current: cur.value,
                change,
            });
        } else if change < -threshold {
            // Moved just as far the other way: not a failure, but the
            // committed baseline understates the bench — surface it.
            out.improvements.push(Improvement {
                bench: base.bench.clone(),
                baseline: base.value,
                current: cur.value,
                change: -change,
            });
        }
    }

    for cur in current_latest {
        if !baseline.iter().any(|b| b.bench == cur.bench) {
            out.unbaselined.push(cur.bench.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(file: &str, bench: &str, higher: bool, value: f64) -> BenchSample {
        BenchSample {
            file: file.to_string(),
            bench: bench.to_string(),
            primary: "speedup".to_string(),
            higher_is_better: higher,
            value,
        }
    }

    #[test]
    fn within_threshold_passes_and_reports_rows() {
        let baseline = vec![sample("a", "mailbox", true, 1.5)];
        let current = vec![sample("a", "mailbox", true, 1.35)];
        let out = compare(&baseline, &current, 0.2);
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.rows.len(), 1);
        assert!(out.rows[0].contains("baseline 1.5 current 1.35"));
    }

    #[test]
    fn a_20_percent_drop_fails_a_20_percent_gate() {
        let baseline = vec![sample("a", "mailbox", true, 1.5)];
        // 1.5 * (1 - 0.2) = 1.2 is the bound; just under it regresses.
        let current = vec![sample("a", "mailbox", true, 1.19)];
        let out = compare(&baseline, &current, 0.2);
        assert!(!out.passed());
        let Regression::Threshold { change, .. } = &out.regressions[0] else {
            panic!("{:?}", out.regressions)
        };
        assert!(*change > 0.2);
    }

    #[test]
    fn lower_is_better_gates_the_other_direction() {
        let baseline = vec![sample("a", "latency", false, 10.0)];
        let ok = compare(&baseline, &[sample("a", "latency", false, 11.0)], 0.2);
        assert!(ok.passed(), "10% slower is within a 20% gate");
        let bad = compare(&baseline, &[sample("a", "latency", false, 12.5)], 0.2);
        assert!(!bad.passed(), "25% slower must fail");
        let faster = compare(&baseline, &[sample("a", "latency", false, 5.0)], 0.2);
        assert!(faster.passed(), "improvement never regresses");
    }

    #[test]
    fn improvements_past_the_threshold_are_reported_but_pass() {
        let baseline = vec![
            sample("a", "mailbox", true, 1.5),
            sample("b", "latency", false, 10.0),
        ];
        // mailbox up 50% (good for higher-is-better), latency down 40%
        // (good for lower-is-better): both clear a 20% threshold.
        let current = vec![
            sample("a", "mailbox", true, 2.25),
            sample("b", "latency", false, 6.0),
        ];
        let current = {
            let mut c = current;
            c[1].primary = "latency".into();
            c
        };
        let out = compare(&baseline, &current, 0.2);
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.improvements.len(), 2, "{:?}", out.improvements);
        assert_eq!(out.improvements[0].bench, "mailbox");
        assert!((out.improvements[0].change - 0.5).abs() < 1e-12);
        assert_eq!(out.improvements[1].bench, "latency");
        assert!((out.improvements[1].change - 0.4).abs() < 1e-12);
        assert!(out.improvements[0].to_string().contains("good direction"));
        // A move inside the threshold is neither flagged nor improved.
        let quiet = compare(&baseline[..1], &[sample("a", "mailbox", true, 1.6)], 0.2);
        assert!(quiet.passed());
        assert!(quiet.improvements.is_empty());
    }

    #[test]
    fn missing_bench_is_a_regression_and_new_bench_is_not() {
        let baseline = vec![sample("a", "mailbox", true, 1.5)];
        let current = vec![sample("b", "engine", true, 2.0)];
        let out = compare(&baseline, &current, 0.2);
        assert_eq!(
            out.regressions,
            vec![Regression::Missing {
                bench: "mailbox".to_string()
            }]
        );
        assert_eq!(out.unbaselined, vec!["engine".to_string()]);
    }

    #[test]
    fn multi_sample_directories_trend_and_gate_on_the_latest() {
        let baseline = vec![sample("a", "mailbox", true, 1.5)];
        // File-name order: the last sample is current. The middle dip
        // below the bound must not fail the gate.
        let current = vec![
            sample("0001.json", "mailbox", true, 1.6),
            sample("0002.json", "mailbox", true, 1.0),
            sample("0003.json", "mailbox", true, 1.55),
        ];
        let out = compare(&baseline, &current, 0.2);
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.trends.len(), 1);
        assert!(
            out.trends[0].contains("1.6 -> 1 -> 1.55"),
            "{}",
            out.trends[0]
        );
    }

    #[test]
    fn manifests_round_trip_from_disk() {
        use crate::record::BenchRecord;
        let dir = std::env::temp_dir().join(format!(
            "columbia-bench-compare-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = BenchRecord::new("mailbox_ring_512", "speedup", true)
            .metric("reference_ns_per_iter", 100000.0, 0)
            .metric("indexed_ns_per_iter", 55000.0, 0)
            .metric("speedup", 1.818, 3);
        std::fs::write(
            dir.join(rec.manifest_file_name()),
            serde_json::to_string_pretty(&rec.manifest_value()),
        )
        .unwrap();
        let samples = load_dir(&dir).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].bench, "mailbox_ring_512");
        assert_eq!(samples[0].value, 1.818);
        assert!(samples[0].higher_is_better);
        // A corrupt manifest is a hard error, not a silent skip.
        std::fs::write(dir.join("BENCH_broken.json"), "{not json").unwrap();
        assert!(load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
