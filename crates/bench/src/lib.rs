//! Benchmark harness crate: the `repro` binary regenerates every table
//! and figure of the paper; the Criterion benches (in `benches/`)
//! measure the real kernels and the simulator, including the ablation
//! studies DESIGN.md calls out.
//!
//! This library hosts the pieces the benches and CI share:
//!
//! * [`record`] — the one way a bench emits its machine-readable
//!   result: a `BENCH JSON` stdout line (grepped into the CI bench
//!   artifact) plus, when `BENCH_MANIFEST_DIR` is set, a schema'd
//!   per-bench manifest file for the regression gate.
//! * [`mod@compare`] — ingestion and trend/regression analysis over a
//!   directory of those manifests, behind the `bench-compare` binary
//!   CI gates on.

pub mod compare;
pub mod record;

pub use compare::{compare, load_dir, BenchSample, CompareOutcome, Improvement, Regression};
pub use record::BenchRecord;
