//! Benchmark harness crate: the `repro` binary regenerates every table
//! and figure of the paper; the Criterion benches (in `benches/`)
//! measure the real kernels and the simulator, including the ablation
//! studies DESIGN.md calls out.
