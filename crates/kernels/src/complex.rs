//! Minimal double-precision complex arithmetic for the FFT kernel.
//!
//! Only the operations the radix-2 butterfly needs; no external crate.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^(iθ)`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (cheaper than [`Complex::abs`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(1.0, 1.0));
        assert_eq!(a - b, Complex::new(2.0, -5.0));
        // (1.5 - 2i)(-0.5 + 3i) = -0.75 + 4.5i + i + 6 = 5.25 + 5.5i
        let p = a * b;
        assert!((p.re - 5.25).abs() < 1e-12);
        assert!((p.im - 5.5).abs() < 1e-12);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        let i = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(i.re.abs() < 1e-12 && (i.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        let zz = z * z.conj();
        assert!((zz.re - 25.0).abs() < 1e-12 && zz.im.abs() < 1e-12);
    }
}
