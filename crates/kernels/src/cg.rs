//! Sparse conjugate gradient (the NPB CG core).
//!
//! CSR sparse matrix-vector products, the unpreconditioned CG solver,
//! and the NPB-style generator of a random symmetric positive-definite
//! sparse matrix with a controlled eigenvalue shift. NPB CG estimates
//! the largest eigenvalue of `A⁻¹` via inverse power iteration,
//! reporting `ζ = shift + 1/(xᵀz)`; we implement the same outer loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compressed sparse row matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Rows (= columns; the matrices here are square).
    pub n: usize,
    /// Row start offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<usize>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// `y ← Ax`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.cols[idx]];
            }
            y[i] = acc;
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Whether the stored pattern/values are exactly symmetric.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.cols[idx];
                let v = self.vals[idx];
                let vt = self.get(j, i);
                if (v - vt).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.cols[idx] == j {
                return self.vals[idx];
            }
        }
        0.0
    }
}

/// Build the NPB-style random SPD matrix: a symmetrized random sparse
/// pattern with about `nz_per_row` entries per row and a diagonal that
/// dominates the absolute off-diagonal row sum, putting the spectrum
/// near 1 (as in NPB, where the reported zeta = shift + 1/(x'z) places
/// the class `shift` *outside* the matrix).
pub fn npb_matrix(n: usize, nz_per_row: usize, seed: u64) -> Csr {
    assert!(n >= 2 && nz_per_row >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Collect symmetric off-diagonal entries in a map per row.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..nz_per_row / 2 {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v = rng.gen_range(-0.1..0.1);
            rows[i].push((j, v));
            rows[j].push((i, v));
        }
    }
    // Diagonal dominance: shift plus the row's absolute off-diag sum
    // guarantees SPD.
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        rows[i].sort_by_key(|&(j, _)| j);
        // Merge duplicate column entries.
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(rows[i].len());
        for &(j, v) in &rows[i] {
            if let Some(last) = merged.last_mut() {
                if last.0 == j {
                    last.1 += v;
                    continue;
                }
            }
            merged.push((j, v));
        }
        let absum: f64 = merged.iter().map(|(_, v)| v.abs()).sum();
        let mut wrote_diag = false;
        for (j, v) in merged {
            if j > i && !wrote_diag {
                cols.push(i);
                vals.push(1.0 + absum + 0.1);
                wrote_diag = true;
            }
            cols.push(j);
            vals.push(v);
        }
        if !wrote_diag {
            cols.push(i);
            vals.push(1.0 + absum + 0.1);
        }
        row_ptr.push(cols.len());
    }
    Csr {
        n,
        row_ptr,
        cols,
        vals,
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: u32,
    /// Final residual L2 norm.
    pub residual: f64,
}

/// Unpreconditioned CG for `Az = x`, overwriting `z`; runs exactly
/// `iters` iterations (the NPB inner loop runs a fixed 25).
pub fn cg_solve(a: &Csr, x: &[f64], z: &mut [f64], iters: u32) -> CgResult {
    let n = a.n;
    assert_eq!(x.len(), n);
    assert_eq!(z.len(), n);
    z.fill(0.0);
    let mut r = x.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rho: f64 = dot(&r, &r);
    for _ in 0..iters {
        a.matvec(&p, &mut q);
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            z[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    CgResult {
        iterations: iters,
        residual: rho.sqrt(),
    }
}

/// One NPB CG outer iteration: solve `Az = x`, report
/// `ζ = shift + 1/(xᵀz)`, and set `x ← z/‖z‖` for the next round.
pub fn power_iteration_step(a: &Csr, x: &mut [f64], shift: f64, inner_iters: u32) -> f64 {
    let mut z = vec![0.0; a.n];
    cg_solve(a, x, &mut z, inner_iters);
    let xtz = dot(x, &z);
    let zeta = shift + 1.0 / xtz;
    let norm = dot(&z, &z).sqrt();
    for i in 0..a.n {
        x[i] = z[i] / norm;
    }
    zeta
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Flops of one CG iteration on a matrix with `nnz` nonzeros and `n`
/// unknowns (matvec + 2 dots + 3 axpys).
pub fn cg_iter_flops(n: usize, nnz: usize) -> f64 {
    2.0 * nnz as f64 + 10.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_matrix_is_symmetric_spd_shaped() {
        let a = npb_matrix(200, 8, 42);
        assert!(a.is_symmetric(1e-12));
        // Diagonal dominance check.
        for i in 0..a.n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for idx in a.row_ptr[i]..a.row_ptr[i + 1] {
                if a.cols[idx] == i {
                    diag = a.vals[idx];
                } else {
                    off += a.vals[idx].abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} <= {off}");
        }
    }

    #[test]
    fn matvec_identity() {
        let a = Csr {
            n: 3,
            row_ptr: vec![0, 1, 2, 3],
            cols: vec![0, 1, 2],
            vals: vec![1.0, 1.0, 1.0],
        };
        let x = vec![3.0, -1.0, 2.0];
        let mut y = vec![0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn cg_drives_residual_down() {
        let a = npb_matrix(300, 10, 1);
        let x = vec![1.0; 300];
        let mut z = vec![0.0; 300];
        let res = cg_solve(&a, &x, &mut z, 25);
        // Residual after 25 iterations should be tiny relative to ‖x‖.
        assert!(
            res.residual < 1e-8 * (300.0f64).sqrt(),
            "residual={}",
            res.residual
        );
    }

    #[test]
    fn cg_solution_satisfies_system() {
        let a = npb_matrix(150, 8, 9);
        let x = vec![1.0; 150];
        let mut z = vec![0.0; 150];
        cg_solve(&a, &x, &mut z, 30);
        let mut az = vec![0.0; 150];
        a.matvec(&z, &mut az);
        let err: f64 = az
            .iter()
            .zip(&x)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-7, "err={err}");
    }

    #[test]
    fn zeta_converges_across_outer_iterations() {
        // The NPB outer loop: ζ stabilizes as the power iteration
        // converges to the dominant eigenpair of A⁻¹.
        let shift = 10.0;
        let a = npb_matrix(250, 9, 5);
        let mut x = vec![1.0; 250];
        let mut zetas = Vec::new();
        for _ in 0..25 {
            zetas.push(power_iteration_step(&a, &mut x, shift, 25));
        }
        let last = zetas[zetas.len() - 1];
        let prev = zetas[zetas.len() - 2];
        // The spectrum is clustered, so the outer iteration drifts
        // slowly; require settling to <0.1% per step.
        assert!(
            ((last - prev) / last).abs() < 1e-3,
            "zeta not converged: {zetas:?}"
        );
        // ζ must exceed the shift (A's smallest eigenvalue > shift).
        assert!(last > shift);
        assert!(last < shift + 1.5, "zeta={last}");
    }

    #[test]
    fn zeta_is_deterministic_for_a_seed() {
        let shift = 20.0;
        let a = npb_matrix(100, 7, 77);
        let mut x1 = vec![1.0; 100];
        let mut x2 = vec![1.0; 100];
        let z1 = power_iteration_step(&a, &mut x1, shift, 25);
        let z2 = power_iteration_step(&a, &mut x2, shift, 25);
        assert_eq!(z1, z2);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(cg_iter_flops(100, 1000), 3000.0);
    }
}
