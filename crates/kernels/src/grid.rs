//! Dense 3-D arrays for the stencil kernels.
//!
//! Row-major (`k` fastest) storage with checked constructors and
//! unchecked-speed indexing via a flat accessor; the multigrid, LU-SGS,
//! and line-relaxation kernels all operate on these.

/// A dense `ni × nj × nk` array of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    ni: usize,
    nj: usize,
    nk: usize,
    data: Vec<f64>,
}

impl Grid3 {
    /// Zero-filled grid.
    pub fn zeros(ni: usize, nj: usize, nk: usize) -> Self {
        assert!(ni > 0 && nj > 0 && nk > 0, "grid dims must be positive");
        Grid3 {
            ni,
            nj,
            nk,
            data: vec![0.0; ni * nj * nk],
        }
    }

    /// Grid filled by `f(i, j, k)`.
    pub fn from_fn(
        ni: usize,
        nj: usize,
        nk: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut g = Grid3::zeros(ni, nj, nk);
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    let idx = g.idx(i, j, k);
                    g.data[idx] = f(i, j, k);
                }
            }
        }
        g
    }

    /// Dimensions `(ni, nj, nk)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid is empty (never true: dims are positive).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj && k < self.nk);
        (i * self.nj + j) * self.nk + k
    }

    /// Read one point.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write one point.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Immutable flat view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// L2 norm over all points, normalized by point count — the
    /// residual norm the NPB-style verifications use.
    pub fn norm_l2(&self) -> f64 {
        (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
    }

    /// Maximum absolute value.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut g = Grid3::zeros(3, 4, 5);
        g.set(2, 3, 4, 7.5);
        assert_eq!(g.get(2, 3, 4), 7.5);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.len(), 60);
        assert_eq!(g.dims(), (3, 4, 5));
    }

    #[test]
    fn k_is_fastest_axis() {
        let g = Grid3::zeros(2, 2, 8);
        assert_eq!(g.idx(0, 0, 1) - g.idx(0, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0) - g.idx(0, 0, 0), 8);
        assert_eq!(g.idx(1, 0, 0) - g.idx(0, 0, 0), 16);
    }

    #[test]
    fn from_fn_fills_all_points() {
        let g = Grid3::from_fn(2, 3, 4, |i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(g.get(1, 2, 3), 123.0);
        assert_eq!(g.get(0, 1, 0), 10.0);
    }

    #[test]
    fn norms() {
        let g = Grid3::from_fn(1, 1, 4, |_, _, k| if k == 2 { -3.0 } else { 0.0 });
        assert!((g.norm_inf() - 3.0).abs() < 1e-15);
        assert!((g.norm_l2() - (9.0f64 / 4.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        Grid3::zeros(0, 1, 1);
    }
}
