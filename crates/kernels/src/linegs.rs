//! Line Gauss-Seidel relaxation (the INS3D solver core, §3.4).
//!
//! INS3D's artificial-compressibility formulation iterates the matrix
//! equation "by using a non-factored Gauss-Seidel type line-relaxation
//! scheme, which maintains stability and allows a large pseudo-time
//! step". The kernel: along every `k`-line of the grid, solve the
//! scalar tridiagonal system implied by the `k`-direction coupling
//! exactly (Thomas algorithm), treating the `i`/`j` couplings with the
//! newest available values — Gauss-Seidel across lines.

use crate::grid::Grid3;

/// Coefficients of the model 7-point operator
/// `A u = diag·u − off·Σ(six neighbours)`.
#[derive(Debug, Clone, Copy)]
pub struct LineGsCoeffs {
    /// Diagonal coefficient (`> 6·off` for dominance).
    pub diag: f64,
    /// Neighbour coupling.
    pub off: f64,
}

impl Default for LineGsCoeffs {
    fn default() -> Self {
        LineGsCoeffs {
            diag: 6.5,
            off: 1.0,
        }
    }
}

/// Solve one scalar tridiagonal system in place with the Thomas
/// algorithm: `a·x[m−1] + b·x[m] + c·x[m+1] = d[m]` (constant
/// coefficients, as arises from the isotropic model operator).
pub fn thomas_scalar(a: f64, b: f64, c: f64, d: &mut [f64]) {
    let n = d.len();
    assert!(n >= 1);
    let mut cp = vec![0.0; n];
    // Forward elimination.
    let mut beta = b;
    assert!(beta.abs() > 1e-14, "tridiagonal pivot underflow");
    cp[0] = c / beta;
    d[0] /= beta;
    for m in 1..n {
        beta = b - a * cp[m - 1];
        assert!(beta.abs() > 1e-14, "tridiagonal pivot underflow");
        cp[m] = c / beta;
        d[m] = (d[m] - a * d[m - 1]) / beta;
    }
    // Back substitution.
    for m in (0..n - 1).rev() {
        d[m] -= cp[m] * d[m + 1];
    }
}

/// One line-relaxation sweep: for each `(i, j)` in lexicographic order,
/// solve the `k`-line exactly with the latest `i∓1`, `j∓1` values on
/// the right-hand side.
pub fn line_sweep(u: &mut Grid3, rhs: &Grid3, c: LineGsCoeffs) {
    let (ni, nj, nk) = u.dims();
    let mut line = vec![0.0; nk];
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                let mut d = rhs.get(i, j, k);
                if i > 0 {
                    d += c.off * u.get(i - 1, j, k);
                }
                if i + 1 < ni {
                    d += c.off * u.get(i + 1, j, k);
                }
                if j > 0 {
                    d += c.off * u.get(i, j - 1, k);
                }
                if j + 1 < nj {
                    d += c.off * u.get(i, j + 1, k);
                }
                line[k] = d;
            }
            thomas_scalar(-c.off, c.diag, -c.off, &mut line);
            for k in 0..nk {
                u.set(i, j, k, line[k]);
            }
        }
    }
}

/// Residual `‖rhs − A u‖₂` of the model operator.
pub fn residual(u: &Grid3, rhs: &Grid3, c: LineGsCoeffs) -> f64 {
    let (ni, nj, nk) = u.dims();
    let mut sum = 0.0;
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                let mut s = 0.0;
                if i > 0 {
                    s += u.get(i - 1, j, k);
                }
                if i + 1 < ni {
                    s += u.get(i + 1, j, k);
                }
                if j > 0 {
                    s += u.get(i, j - 1, k);
                }
                if j + 1 < nj {
                    s += u.get(i, j + 1, k);
                }
                if k > 0 {
                    s += u.get(i, j, k - 1);
                }
                if k + 1 < nk {
                    s += u.get(i, j, k + 1);
                }
                let au = c.diag * u.get(i, j, k) - c.off * s;
                let r = rhs.get(i, j, k) - au;
                sum += r * r;
            }
        }
    }
    (sum / (ni * nj * nk) as f64).sqrt()
}

/// Point-Jacobi sweep with the same operator, for the convergence-rate
/// comparison (the line solver converges markedly faster — the reason
/// INS3D can take large pseudo-time steps).
pub fn jacobi_sweep(u: &mut Grid3, rhs: &Grid3, c: LineGsCoeffs) {
    let (ni, nj, nk) = u.dims();
    let old = u.clone();
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                let mut s = 0.0;
                if i > 0 {
                    s += old.get(i - 1, j, k);
                }
                if i + 1 < ni {
                    s += old.get(i + 1, j, k);
                }
                if j > 0 {
                    s += old.get(i, j - 1, k);
                }
                if j + 1 < nj {
                    s += old.get(i, j + 1, k);
                }
                if k > 0 {
                    s += old.get(i, j, k - 1);
                }
                if k + 1 < nk {
                    s += old.get(i, j, k + 1);
                }
                u.set(i, j, k, (rhs.get(i, j, k) + c.off * s) / c.diag);
            }
        }
    }
}

/// Flops per point of one line-relaxation sweep (tridiagonal solve ≈ 8
/// + RHS assembly ≈ 10).
pub const LINEGS_FLOPS_PER_POINT: f64 = 18.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn rhs_grid(n: usize) -> Grid3 {
        Grid3::from_fn(n, n, n, |i, j, k| ((i + 2 * j + 3 * k) % 7) as f64 - 3.0)
    }

    #[test]
    fn thomas_solves_known_tridiagonal() {
        // System: -x[m-1] + 4x[m] - x[m+1] = d, x_true = [1,2,3,4].
        let x_true = [1.0, 2.0, 3.0, 4.0];
        let mut d = [0.0; 4];
        for m in 0..4 {
            let mut v = 4.0 * x_true[m];
            if m > 0 {
                v -= x_true[m - 1];
            }
            if m < 3 {
                v -= x_true[m + 1];
            }
            d[m] = v;
        }
        thomas_scalar(-1.0, 4.0, -1.0, &mut d);
        for m in 0..4 {
            assert!((d[m] - x_true[m]).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_single_element() {
        let mut d = [8.0];
        thomas_scalar(-1.0, 4.0, -1.0, &mut d);
        assert!((d[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn line_sweeps_converge() {
        let n = 12;
        let rhs = rhs_grid(n);
        let c = LineGsCoeffs::default();
        let mut u = Grid3::zeros(n, n, n);
        let r0 = residual(&u, &rhs, c);
        for _ in 0..30 {
            line_sweep(&mut u, &rhs, c);
        }
        let r = residual(&u, &rhs, c);
        assert!(r < r0 * 1e-6, "r0={r0} r={r}");
    }

    #[test]
    fn line_relaxation_beats_jacobi_per_sweep() {
        let n = 12;
        let rhs = rhs_grid(n);
        let c = LineGsCoeffs::default();
        let sweeps = 10;
        let mut u_line = Grid3::zeros(n, n, n);
        let mut u_jac = Grid3::zeros(n, n, n);
        for _ in 0..sweeps {
            line_sweep(&mut u_line, &rhs, c);
            jacobi_sweep(&mut u_jac, &rhs, c);
        }
        let r_line = residual(&u_line, &rhs, c);
        let r_jac = residual(&u_jac, &rhs, c);
        assert!(
            r_line < r_jac / 10.0,
            "line relaxation should converge much faster: line={r_line} jacobi={r_jac}"
        );
    }

    #[test]
    fn exact_on_k_decoupled_problem() {
        // With off-coupling only in k (single i, j), one sweep is an
        // exact solve.
        let (ni, nj, nk) = (1, 1, 16);
        let c = LineGsCoeffs {
            diag: 4.0,
            off: 1.0,
        };
        let rhs = Grid3::from_fn(ni, nj, nk, |_, _, k| (k % 3) as f64);
        let mut u = Grid3::zeros(ni, nj, nk);
        line_sweep(&mut u, &rhs, c);
        assert!(residual(&u, &rhs, c) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pivot underflow")]
    fn singular_tridiagonal_detected() {
        let mut d = [1.0, 1.0];
        thomas_scalar(0.0, 0.0, 0.0, &mut d);
    }
}
