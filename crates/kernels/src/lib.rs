// Index-style loops and BLAS-style argument lists are the natural
// idiom for these numerical kernels; iterator rewrites obscure the
// stencil structure the comments and the paper describe.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

//! Real computational kernels underlying every benchmark in the paper.
//!
//! These are genuine implementations — they compute, are verified by
//! the test suite, and run in parallel with rayon where the loop
//! structure allows. The workload crates use them two ways: directly,
//! for host-scale "real runs" (examples, correctness tests, Criterion
//! benches), and analytically, as the source of the flop/byte counts
//! their simulator workload specs carry.
//!
//! * [`dgemm`] — dense matrix multiply: naive, cache-blocked, and
//!   rayon-parallel tiles (the HPCC DGEMM component);
//! * [`stream`] — the four STREAM vector operations;
//! * [`complex`] — a minimal complex type for the FFT;
//! * [`fft`] — iterative radix-2 complex FFT and a pencil-decomposed
//!   3-D transform (NPB FT);
//! * [`grid`] — a dense 3-D array with halo-friendly indexing, shared
//!   by the stencil kernels;
//! * [`mg`] — multigrid V-cycle for the 3-D Poisson equation (NPB MG);
//! * [`cg`] — CSR sparse matrix-vector products and the conjugate
//!   gradient solver, with the NPB-style random matrix generator;
//! * [`btsolve`] — 5×5 block-tridiagonal line solver (NPB BT and the
//!   multi-zone BT-MZ/SP-MZ);
//! * [`lusgs`] — hyperplane-pipelined LU-SGS sweep (the OVERFLOW-D
//!   linear solver, reimplemented as a pipeline per §3.5);
//! * [`linegs`] — line Gauss-Seidel relaxation (the INS3D solver).

pub mod btsolve;
pub mod cg;
pub mod complex;
pub mod dgemm;
pub mod fft;
pub mod grid;
pub mod linegs;
pub mod lusgs;
pub mod mg;
pub mod stream;

pub use complex::Complex;
pub use grid::Grid3;
