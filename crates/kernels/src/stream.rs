//! The STREAM kernels (copy, scale, add, triad).
//!
//! Real vector operations, usable both single-threaded and via rayon,
//! with a small timing harness returning achieved bytes/second — the
//! host-side twin of the simulated HPCC STREAM component.

use std::time::Instant;

use rayon::prelude::*;

use columbia_machine::memory::StreamOp;

/// Execute one STREAM operation once over the given vectors.
///
/// Vector roles follow the reference benchmark: `copy: c←a`,
/// `scale: b←s·c`, `add: c←a+b`, `triad: a←b+s·c`.
pub fn run_op(op: StreamOp, a: &mut [f64], b: &mut [f64], c: &mut [f64], s: f64) {
    let n = a.len();
    assert!(
        b.len() == n && c.len() == n,
        "vectors must have equal length"
    );
    match op {
        StreamOp::Copy => c.copy_from_slice(a),
        StreamOp::Scale => {
            for (bv, cv) in b.iter_mut().zip(c.iter()) {
                *bv = s * cv;
            }
        }
        StreamOp::Add => {
            for ((cv, av), bv) in c.iter_mut().zip(a.iter()).zip(b.iter()) {
                *cv = av + bv;
            }
        }
        StreamOp::Triad => {
            for ((av, bv), cv) in a.iter_mut().zip(b.iter()).zip(c.iter()) {
                *av = bv + s * cv;
            }
        }
    }
}

/// Rayon-parallel variant of [`run_op`].
pub fn run_op_parallel(op: StreamOp, a: &mut [f64], b: &mut [f64], c: &mut [f64], s: f64) {
    let n = a.len();
    assert!(
        b.len() == n && c.len() == n,
        "vectors must have equal length"
    );
    match op {
        StreamOp::Copy => {
            c.par_iter_mut()
                .zip(a.par_iter())
                .for_each(|(cv, av)| *cv = *av);
        }
        StreamOp::Scale => {
            b.par_iter_mut()
                .zip(c.par_iter())
                .for_each(|(bv, cv)| *bv = s * cv);
        }
        StreamOp::Add => {
            c.par_iter_mut()
                .zip(a.par_iter().zip(b.par_iter()))
                .for_each(|(cv, (av, bv))| *cv = av + bv);
        }
        StreamOp::Triad => {
            a.par_iter_mut()
                .zip(b.par_iter().zip(c.par_iter()))
                .for_each(|(av, (bv, cv))| *av = bv + s * cv);
        }
    }
}

/// Measured result of one STREAM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeasurement {
    /// Which operation ran.
    pub op: StreamOp,
    /// Best-iteration achieved bandwidth, bytes/second.
    pub bytes_per_second: f64,
}

/// Time `op` over vectors of `n` doubles for `iters` iterations and
/// report the best achieved bandwidth (STREAM's methodology).
pub fn measure(op: StreamOp, n: usize, iters: u32) -> StreamMeasurement {
    assert!(iters >= 1);
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let bytes = op.bytes_per_element() * n as u64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        run_op(op, &mut a, &mut b, &mut c, 3.0);
        best = best.min(t.elapsed().as_secs_f64());
    }
    StreamMeasurement {
        op,
        bytes_per_second: bytes as f64 / best.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| 3.0 * i as f64).collect();
        (a, b, c)
    }

    #[test]
    fn copy_copies() {
        let (mut a, mut b, mut c) = vectors(100);
        run_op(StreamOp::Copy, &mut a, &mut b, &mut c, 0.0);
        assert_eq!(c, a);
    }

    #[test]
    fn scale_scales() {
        let (mut a, mut b, mut c) = vectors(100);
        run_op(StreamOp::Scale, &mut a, &mut b, &mut c, 2.0);
        for i in 0..100 {
            assert_eq!(b[i], 2.0 * c[i]);
        }
    }

    #[test]
    fn add_adds() {
        let (mut a, mut b, mut c) = vectors(64);
        run_op(StreamOp::Add, &mut a, &mut b, &mut c, 0.0);
        for i in 0..64 {
            assert_eq!(c[i], a[i] + b[i]);
        }
    }

    #[test]
    fn triad_fuses_multiply_add() {
        let (mut a, mut b, mut c) = vectors(64);
        let b0 = b.clone();
        let c0 = c.clone();
        run_op(StreamOp::Triad, &mut a, &mut b, &mut c, 3.0);
        for i in 0..64 {
            assert_eq!(a[i], b0[i] + 3.0 * c0[i]);
        }
    }

    #[test]
    fn parallel_matches_serial_for_all_ops() {
        for op in StreamOp::ALL {
            let (mut a1, mut b1, mut c1) = vectors(1000);
            let (mut a2, mut b2, mut c2) = vectors(1000);
            run_op(op, &mut a1, &mut b1, &mut c1, 1.5);
            run_op_parallel(op, &mut a2, &mut b2, &mut c2, 1.5);
            assert_eq!(a1, a2);
            assert_eq!(b1, b2);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn measure_reports_positive_bandwidth() {
        let m = measure(StreamOp::Triad, 10_000, 3);
        assert!(m.bytes_per_second > 0.0);
        assert_eq!(m.op, StreamOp::Triad);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 3];
        let mut c = vec![0.0; 4];
        run_op(StreamOp::Copy, &mut a, &mut b, &mut c, 0.0);
    }
}
