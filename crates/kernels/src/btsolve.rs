//! 5×5 block-tridiagonal line solver (the NPB BT / BT-MZ core).
//!
//! BT's ADI scheme factors the implicit operator into three directional
//! sweeps, each solving block-tridiagonal systems with 5×5 blocks (the
//! five Navier-Stokes unknowns) along every grid line. This module
//! implements the dense 5×5 arithmetic and the block Thomas algorithm.

/// Number of flow variables per grid point.
pub const NVAR: usize = 5;

/// A 5×5 dense block.
pub type Mat5 = [[f64; NVAR]; NVAR];

/// A length-5 vector.
pub type Vec5 = [f64; NVAR];

/// `C ← A·B`.
pub fn mat_mul(a: &Mat5, b: &Mat5) -> Mat5 {
    let mut c = [[0.0; NVAR]; NVAR];
    for i in 0..NVAR {
        for k in 0..NVAR {
            let aik = a[i][k];
            for j in 0..NVAR {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

/// `y ← A·x`.
pub fn mat_vec(a: &Mat5, x: &Vec5) -> Vec5 {
    let mut y = [0.0; NVAR];
    for i in 0..NVAR {
        for j in 0..NVAR {
            y[i] += a[i][j] * x[j];
        }
    }
    y
}

/// `C ← A − B`.
pub fn mat_sub(a: &Mat5, b: &Mat5) -> Mat5 {
    let mut c = *a;
    for i in 0..NVAR {
        for j in 0..NVAR {
            c[i][j] -= b[i][j];
        }
    }
    c
}

/// Solve `Ax = b` for one 5×5 block by Gaussian elimination with
/// partial pivoting. Panics on a (numerically) singular block.
pub fn solve5(a: &Mat5, b: &Vec5) -> Vec5 {
    let mut m = *a;
    let mut x = *b;
    for col in 0..NVAR {
        // Pivot.
        let mut piv = col;
        for r in col + 1..NVAR {
            if m[r][col].abs() > m[piv][col].abs() {
                piv = r;
            }
        }
        if m[piv][col].abs() < 1e-14 {
            panic!("singular 5x5 block in btsolve");
        }
        m.swap(col, piv);
        x.swap(col, piv);
        // Eliminate below.
        let d = m[col][col];
        for r in col + 1..NVAR {
            let f = m[r][col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..NVAR {
                m[r][c] -= f * m[col][c];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..NVAR).rev() {
        let mut acc = x[col];
        for c in col + 1..NVAR {
            acc -= m[col][c] * x[c];
        }
        x[col] = acc / m[col][col];
    }
    x
}

/// Invert a 5×5 block (via five solves against unit vectors).
pub fn invert5(a: &Mat5) -> Mat5 {
    let mut inv = [[0.0; NVAR]; NVAR];
    for j in 0..NVAR {
        let mut e = [0.0; NVAR];
        e[j] = 1.0;
        let col = solve5(a, &e);
        for i in 0..NVAR {
            inv[i][j] = col[i];
        }
    }
    inv
}

/// Solve a block-tridiagonal system along one line by the block Thomas
/// algorithm.
///
/// `lower[i]·x[i−1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i]` for
/// `i = 0..n`, with `lower[0]` and `upper[n−1]` ignored. `rhs` is
/// overwritten with the solution.
pub fn block_thomas(lower: &[Mat5], diag: &[Mat5], upper: &[Mat5], rhs: &mut [Vec5]) {
    let n = diag.len();
    assert!(n >= 1);
    assert_eq!(lower.len(), n);
    assert_eq!(upper.len(), n);
    assert_eq!(rhs.len(), n);
    // Forward elimination: d'_i = d_i − l_i d'_{i−1}⁻¹ u_{i−1}.
    let mut dprime: Vec<Mat5> = Vec::with_capacity(n);
    dprime.push(diag[0]);
    for i in 1..n {
        let dinv = invert5(&dprime[i - 1]);
        let l_dinv = mat_mul(&lower[i], &dinv);
        dprime.push(mat_sub(&diag[i], &mat_mul(&l_dinv, &upper[i - 1])));
        let corr = mat_vec(&l_dinv, &rhs[i - 1]);
        for v in 0..NVAR {
            rhs[i][v] -= corr[v];
        }
    }
    // Back substitution.
    rhs[n - 1] = solve5(&dprime[n - 1], &rhs[n - 1]);
    for i in (0..n - 1).rev() {
        let ux = mat_vec(&upper[i], &rhs[i + 1]);
        let mut b = rhs[i];
        for v in 0..NVAR {
            b[v] -= ux[v];
        }
        rhs[i] = solve5(&dprime[i], &b);
    }
}

/// Flops of one block-tridiagonal solve of length `n` (dominated by the
/// 5×5 inversions and multiplies: ~1150 flops per interior point).
pub fn line_solve_flops(n: usize) -> f64 {
    1150.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_block(rng: &mut StdRng, dominant: bool) -> Mat5 {
        let mut m = [[0.0; NVAR]; NVAR];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = rng.gen_range(-1.0..1.0);
                if dominant && i == j {
                    *v += 10.0;
                }
            }
        }
        m
    }

    #[test]
    fn solve5_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_block(&mut rng, true);
        let x_true = [1.0, -2.0, 0.5, 3.0, -0.25];
        let b = mat_vec(&a, &x_true);
        let x = solve5(&a, &b);
        for v in 0..NVAR {
            assert!((x[v] - x_true[v]).abs() < 1e-10);
        }
    }

    #[test]
    fn invert5_gives_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_block(&mut rng, true);
        let inv = invert5(&a);
        let prod = mat_mul(&a, &inv);
        for i in 0..NVAR {
            for j in 0..NVAR {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i][j] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn block_thomas_solves_constructed_system() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12;
        let lower: Vec<Mat5> = (0..n).map(|_| random_block(&mut rng, false)).collect();
        let diag: Vec<Mat5> = (0..n).map(|_| random_block(&mut rng, true)).collect();
        let upper: Vec<Mat5> = (0..n).map(|_| random_block(&mut rng, false)).collect();
        let x_true: Vec<Vec5> = (0..n)
            .map(|_| {
                let mut v = [0.0; NVAR];
                for e in v.iter_mut() {
                    *e = rng.gen_range(-2.0..2.0);
                }
                v
            })
            .collect();
        // rhs_i = l_i x_{i-1} + d_i x_i + u_i x_{i+1}
        let mut rhs: Vec<Vec5> = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = mat_vec(&diag[i], &x_true[i]);
            if i > 0 {
                let lx = mat_vec(&lower[i], &x_true[i - 1]);
                for v in 0..NVAR {
                    b[v] += lx[v];
                }
            }
            if i + 1 < n {
                let ux = mat_vec(&upper[i], &x_true[i + 1]);
                for v in 0..NVAR {
                    b[v] += ux[v];
                }
            }
            rhs.push(b);
        }
        block_thomas(&lower, &diag, &upper, &mut rhs);
        for i in 0..n {
            for v in 0..NVAR {
                assert!(
                    (rhs[i][v] - x_true[i][v]).abs() < 1e-8,
                    "mismatch at point {i} var {v}"
                );
            }
        }
    }

    #[test]
    fn single_block_line_degenerates_to_solve5() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = random_block(&mut rng, true);
        let zero = [[0.0; NVAR]; NVAR];
        let x_true = [2.0, 1.0, 0.0, -1.0, 4.0];
        let mut rhs = vec![mat_vec(&d, &x_true)];
        block_thomas(&[zero], &[d], &[zero], &mut rhs);
        for v in 0..NVAR {
            assert!((rhs[0][v] - x_true[v]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_block_detected() {
        let a = [[0.0; NVAR]; NVAR];
        let _ = solve5(&a, &[1.0; NVAR]);
    }
}
