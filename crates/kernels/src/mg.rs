//! Multigrid V-cycle for the 3-D Poisson equation (the NPB MG core).
//!
//! Periodic `n³` grids (power-of-two edge), a 7-point Laplacian,
//! damped-Jacobi smoothing, full-weighting restriction, and trilinear
//! prolongation. MG is the benchmark the paper uses to exercise "long-
//! and short-distance communication": on a distributed grid every
//! level's smoother exchanges halos, with coarse levels reaching far
//! neighbours.

use crate::grid::Grid3;

/// Apply the periodic 7-point Laplacian `(Au)_x = 6u_x - Σ neighbours`
/// scaled by `1/h²` with `h = 1/n`.
pub fn apply_laplacian(u: &Grid3) -> Grid3 {
    let (ni, nj, nk) = u.dims();
    let h2inv = (ni * ni) as f64; // h = 1/ni on the unit cube
    Grid3::from_fn(ni, nj, nk, |i, j, k| {
        let ip = (i + 1) % ni;
        let im = (i + ni - 1) % ni;
        let jp = (j + 1) % nj;
        let jm = (j + nj - 1) % nj;
        let kp = (k + 1) % nk;
        let km = (k + nk - 1) % nk;
        h2inv
            * (6.0 * u.get(i, j, k)
                - u.get(ip, j, k)
                - u.get(im, j, k)
                - u.get(i, jp, k)
                - u.get(i, jm, k)
                - u.get(i, j, kp)
                - u.get(i, j, km))
    })
}

/// Residual `r = v − Au`.
pub fn residual(v: &Grid3, u: &Grid3) -> Grid3 {
    let au = apply_laplacian(u);
    let (ni, nj, nk) = v.dims();
    Grid3::from_fn(ni, nj, nk, |i, j, k| v.get(i, j, k) - au.get(i, j, k))
}

/// One damped-Jacobi sweep: `u ← u + ω D⁻¹ (v − Au)` with `ω = 2/3`.
pub fn smooth(u: &mut Grid3, v: &Grid3) {
    let (ni, _, _) = u.dims();
    let h2inv = (ni * ni) as f64;
    let diag = 6.0 * h2inv;
    let omega = 2.0 / 3.0;
    let r = residual(v, u);
    for (uv, rv) in u.as_mut_slice().iter_mut().zip(r.as_slice()) {
        *uv += omega * rv / diag;
    }
}

/// Full-weighting restriction to the half-resolution grid.
pub fn restrict(fine: &Grid3) -> Grid3 {
    let (ni, nj, nk) = fine.dims();
    assert!(
        ni % 2 == 0 && nj % 2 == 0 && nk % 2 == 0,
        "grid must halve evenly"
    );
    let (ci, cj, ck) = (ni / 2, nj / 2, nk / 2);
    Grid3::from_fn(ci, cj, ck, |i, j, k| {
        // 27-point full weighting centred on the even fine point.
        let mut sum = 0.0;
        for (di, wi) in [(ni - 1, 0.5), (0, 1.0), (1, 0.5)] {
            for (dj, wj) in [(nj - 1, 0.5), (0, 1.0), (1, 0.5)] {
                for (dk, wk) in [(nk - 1, 0.5), (0, 1.0), (1, 0.5)] {
                    let fi = (2 * i + di) % ni;
                    let fj = (2 * j + dj) % nj;
                    let fk = (2 * k + dk) % nk;
                    sum += wi * wj * wk * fine.get(fi, fj, fk);
                }
            }
        }
        sum / 8.0
    })
}

/// Trilinear prolongation from the half-resolution grid, added into
/// `fine`.
pub fn prolongate_add(fine: &mut Grid3, coarse: &Grid3) {
    let (ni, nj, nk) = fine.dims();
    let (ci, cj, ck) = coarse.dims();
    assert_eq!(
        (ci * 2, cj * 2, ck * 2),
        (ni, nj, nk),
        "coarse must be half of fine"
    );
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                // Interpolation weights: even index = on a coarse
                // point, odd = midway between two.
                let (i0, wi) = (i / 2, if i % 2 == 0 { 1.0 } else { 0.5 });
                let (j0, wj) = (j / 2, if j % 2 == 0 { 1.0 } else { 0.5 });
                let (k0, wk) = (k / 2, if k % 2 == 0 { 1.0 } else { 0.5 });
                let mut val = 0.0;
                for (ii, wwi) in [(i0, wi), ((i0 + 1) % ci, 1.0 - wi)] {
                    for (jj, wwj) in [(j0, wj), ((j0 + 1) % cj, 1.0 - wj)] {
                        for (kk, wwk) in [(k0, wk), ((k0 + 1) % ck, 1.0 - wk)] {
                            if wwi > 0.0 && wwj > 0.0 && wwk > 0.0 {
                                val += wwi * wwj * wwk * coarse.get(ii, jj, kk);
                            }
                        }
                    }
                }
                let cur = fine.get(i, j, k);
                fine.set(i, j, k, cur + val);
            }
        }
    }
}

/// One V-cycle on `u` for right-hand side `v`, with `pre`/`post`
/// smoothing sweeps, recursing until an edge of 2.
pub fn v_cycle(u: &mut Grid3, v: &Grid3, pre: u32, post: u32) {
    let (ni, _, _) = u.dims();
    for _ in 0..pre {
        smooth(u, v);
    }
    if ni > 2 {
        let r = residual(v, u);
        let rc = restrict(&r);
        let (ci, cj, ck) = rc.dims();
        let mut ec = Grid3::zeros(ci, cj, ck);
        v_cycle(&mut ec, &rc, pre, post);
        prolongate_add(u, &ec);
    }
    for _ in 0..post {
        smooth(u, v);
    }
}

/// Project out the mean of `g` (the periodic Poisson problem is only
/// solvable for zero-mean right-hand sides, up to a constant).
pub fn remove_mean(g: &mut Grid3) {
    let mean = g.as_slice().iter().sum::<f64>() / g.len() as f64;
    for v in g.as_mut_slice() {
        *v -= mean;
    }
}

/// Flops of one V-cycle on an `n³` grid (NPB-style accounting: ~58
/// flops per fine-grid point per cycle summed over levels ≈ ×8/7).
pub fn vcycle_flops(n: usize) -> f64 {
    58.0 * (n * n * n) as f64 * 8.0 / 7.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rhs(n: usize, seed: u64) -> Grid3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Grid3::from_fn(n, n, n, |_, _, _| rng.gen_range(-1.0..1.0));
        remove_mean(&mut g);
        g
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let u = Grid3::from_fn(8, 8, 8, |_, _, _| 3.7);
        let au = apply_laplacian(&u);
        assert!(au.norm_inf() < 1e-9);
    }

    #[test]
    fn laplacian_of_cosine_is_eigenfunction() {
        // u = cos(2πx) is an eigenfunction of the periodic Laplacian.
        let n = 32;
        let u = Grid3::from_fn(n, n, n, |i, _, _| {
            (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos()
        });
        let au = apply_laplacian(&u);
        // Discrete eigenvalue: (2 - 2cos(2π/n)) · n².
        let lam = (2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) * (n * n) as f64;
        for i in 0..n {
            let expect = lam * u.get(i, 3, 5);
            assert!((au.get(i, 3, 5) - expect).abs() < 1e-6 * lam.max(1.0));
        }
    }

    #[test]
    fn smoothing_reduces_residual() {
        let n = 16;
        let v = random_rhs(n, 3);
        let mut u = Grid3::zeros(n, n, n);
        let r0 = residual(&v, &u).norm_l2();
        for _ in 0..10 {
            smooth(&mut u, &v);
        }
        let r1 = residual(&v, &u).norm_l2();
        assert!(r1 < r0, "r0={r0} r1={r1}");
    }

    #[test]
    fn restriction_preserves_constants() {
        let fine = Grid3::from_fn(8, 8, 8, |_, _, _| 2.5);
        let coarse = restrict(&fine);
        assert_eq!(coarse.dims(), (4, 4, 4));
        for v in coarse.as_slice() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn prolongation_preserves_constants() {
        let coarse = Grid3::from_fn(4, 4, 4, |_, _, _| 1.5);
        let mut fine = Grid3::zeros(8, 8, 8);
        prolongate_add(&mut fine, &coarse);
        for v in fine.as_slice() {
            assert!((v - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn v_cycles_converge_much_faster_than_jacobi() {
        let n = 32;
        let v = random_rhs(n, 7);
        let mut u = Grid3::zeros(n, n, n);
        let r0 = residual(&v, &u).norm_l2();
        for _ in 0..4 {
            v_cycle(&mut u, &v, 2, 2);
        }
        let r_mg = residual(&v, &u).norm_l2();
        // Four V-cycles should beat r0 by >100x on a smooth problem.
        assert!(r_mg < r0 / 100.0, "r0={r0} r_mg={r_mg}");

        // Same smoothing effort as pure Jacobi converges far less.
        let mut uj = Grid3::zeros(n, n, n);
        for _ in 0..16 {
            smooth(&mut uj, &v);
        }
        let r_j = residual(&v, &uj).norm_l2();
        assert!(r_mg < r_j / 5.0, "mg={r_mg} jacobi={r_j}");
    }

    #[test]
    fn vcycle_flops_scale_cubically() {
        assert!(vcycle_flops(64) > 7.9 * vcycle_flops(32));
        assert!(vcycle_flops(64) < 8.1 * vcycle_flops(32));
    }

    #[test]
    #[should_panic(expected = "halve evenly")]
    fn odd_grid_cannot_restrict() {
        let g = Grid3::zeros(6, 6, 7);
        let _ = restrict(&g);
    }
}
