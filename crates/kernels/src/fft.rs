//! Iterative radix-2 complex FFT and a pencil-decomposed 3-D transform.
//!
//! This is the computational core of NPB FT: a 3-D FFT applied
//! repeatedly to an evolving complex field. The 1-D kernel is a
//! standard bit-reversal + butterfly Cooley-Tukey; the 3-D transform
//! sweeps pencils along each axis, which is exactly the structure whose
//! transpose steps become the benchmark's all-to-all when distributed.

use crate::complex::Complex;

/// In-place forward FFT. `data.len()` must be a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (including the 1/N normalization).
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for off in 0..len / 2 {
                let u = data[start + off];
                let v = data[start + off + len / 2] * w;
                data[start + off] = u + v;
                data[start + off + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Dense 3-D complex field, row-major with `k` fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    /// Dimensions.
    pub dims: (usize, usize, usize),
    /// Flat storage.
    pub data: Vec<Complex>,
}

impl Field3 {
    /// Zero field.
    pub fn zeros(ni: usize, nj: usize, nk: usize) -> Self {
        Field3 {
            dims: (ni, nj, nk),
            data: vec![Complex::ZERO; ni * nj * nk],
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.dims.1 + j) * self.dims.2 + k
    }

    /// Read a point.
    pub fn get(&self, i: usize, j: usize, k: usize) -> Complex {
        self.data[self.idx(i, j, k)]
    }

    /// Write a point.
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Complex) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }
}

/// Forward 3-D FFT by pencils (k-axis, then j, then i).
pub fn fft3(field: &mut Field3) {
    transform3(field, false);
}

/// Inverse 3-D FFT.
pub fn ifft3(field: &mut Field3) {
    transform3(field, true);
}

fn transform3(field: &mut Field3, inverse: bool) {
    let (ni, nj, nk) = field.dims;
    let run = |pencil: &mut [Complex]| {
        if inverse {
            ifft(pencil);
        } else {
            fft(pencil);
        }
    };
    // k-pencils are contiguous.
    for i in 0..ni {
        for j in 0..nj {
            let base = (i * nj + j) * nk;
            run(&mut field.data[base..base + nk]);
        }
    }
    // j-pencils.
    let mut buf = vec![Complex::ZERO; nj];
    for i in 0..ni {
        for k in 0..nk {
            for j in 0..nj {
                buf[j] = field.get(i, j, k);
            }
            run(&mut buf);
            for j in 0..nj {
                field.set(i, j, k, buf[j]);
            }
        }
    }
    // i-pencils.
    let mut buf = vec![Complex::ZERO; ni];
    for j in 0..nj {
        for k in 0..nk {
            for i in 0..ni {
                buf[i] = field.get(i, j, k);
            }
            run(&mut buf);
            for i in 0..ni {
                field.set(i, j, k, buf[i]);
            }
        }
    }
}

/// Flop count of one complex FFT of length `n` (the standard
/// `5 n log2 n` accounting NPB uses).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::ONE;
        fft(&mut d);
        for v in &d {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let n = 16;
        let mut d = vec![Complex::ONE; n];
        fft(&mut d);
        assert!((d[0].re - n as f64).abs() < 1e-10);
        for v in &d[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 64;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 32;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.2 * i as f64))
            .collect();
        let e_time: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut d = sig;
        fft(&mut d);
        let e_freq: f64 = d.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() / e_time < 1e-12);
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 64;
        let freq = 5;
        let mut d: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64))
            .collect();
        fft(&mut d);
        assert!((d[freq].abs() - n as f64).abs() < 1e-9);
        for (i, v) in d.iter().enumerate() {
            if i != freq {
                assert!(v.abs() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn fft3_roundtrip() {
        let (ni, nj, nk) = (4, 8, 16);
        let mut f = Field3::zeros(ni, nj, nk);
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    f.set(i, j, k, Complex::new((i + 2 * j) as f64, k as f64 * 0.5));
                }
            }
        }
        let orig = f.clone();
        fft3(&mut f);
        ifft3(&mut f);
        for (a, b) in f.data.iter().zip(&orig.data) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft3_of_constant_concentrates_dc() {
        let mut f = Field3::zeros(4, 4, 4);
        for v in f.data.iter_mut() {
            *v = Complex::ONE;
        }
        fft3(&mut f);
        assert!((f.get(0, 0, 0).re - 64.0).abs() < 1e-9);
        let off_dc: f64 = f.data[1..].iter().map(|z| z.abs()).sum();
        assert!(off_dc < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![Complex::ZERO; 12];
        fft(&mut d);
    }
}
