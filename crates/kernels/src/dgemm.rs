//! Dense double-precision matrix multiply (the HPCC DGEMM component).
//!
//! Three variants: a reference naive triple loop, a cache-blocked
//! version (the ablation benches compare the two), and a rayon-parallel
//! tiled version used for multi-worker host runs. All compute
//! `C ← αAB + βC` on row-major square-free `m×k · k×n` operands.

use rayon::prelude::*;

/// Cache block edge, sized so three blocks of doubles stay inside a
/// 256 KB L2-like cache.
pub const BLOCK: usize = 64;

/// Reference naive `C ← αAB + βC`.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major.
pub fn dgemm_naive(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    check_dims(m, n, k, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Cache-blocked `C ← αAB + βC` with an `i,l,j` inner order that
/// streams `b` and `c` rows.
pub fn dgemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    check_dims(m, n, k, a, b, c);
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for l0 in (0..k).step_by(BLOCK) {
            let l1 = (l0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for l in l0..l1 {
                        let av = alpha * a[i * k + l];
                        let brow = &b[l * n + j0..l * n + j1];
                        let crow = &mut c[i * n + j0..i * n + j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Rayon-parallel blocked multiply: row bands of `c` are independent.
pub fn dgemm_parallel(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    check_dims(m, n, k, a, b, c);
    c.par_chunks_mut(n.max(1) * BLOCK)
        .enumerate()
        .for_each(|(band, cband)| {
            let i0 = band * BLOCK;
            let rows = cband.len() / n;
            dgemm_blocked(
                rows,
                n,
                k,
                alpha,
                &a[i0 * k..(i0 + rows) * k],
                b,
                beta,
                cband,
            );
        });
}

/// Flop count of one `m×n×k` multiply-accumulate (2 flops per MAC) —
/// what the HPCC harness divides by the measured time.
pub fn dgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

fn check_dims(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let mut c = vec![0.0; n * n];
        dgemm_blocked(n, n, n, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, n, k) = (70, 65, 90); // deliberately non-multiples of BLOCK
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let c0 = random_mat(&mut rng, m * n);
        let mut c_naive = c0.clone();
        let mut c_block = c0.clone();
        dgemm_naive(m, n, k, 1.3, &a, &b, 0.7, &mut c_naive);
        dgemm_blocked(m, n, k, 1.3, &a, &b, 0.7, &mut c_block);
        assert!(max_diff(&c_naive, &c_block) < 1e-10);
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, n, k) = (150, 40, 60);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let c0 = random_mat(&mut rng, m * n);
        let mut c_naive = c0.clone();
        let mut c_par = c0.clone();
        dgemm_naive(m, n, k, 2.0, &a, &b, -0.5, &mut c_naive);
        dgemm_parallel(m, n, k, 2.0, &a, &b, -0.5, &mut c_par);
        assert!(max_diff(&c_naive, &c_par) < 1e-10);
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(10, 10, 10), 2000.0);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0; 4];
        dgemm_naive(2, 2, 2, 1.0, &[0.0; 3], &[0.0; 4], 0.0, &mut c);
    }
}
