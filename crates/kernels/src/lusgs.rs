//! Pipelined LU-SGS sweeps (the OVERFLOW-D linear solver, §3.5).
//!
//! LU-SGS relaxes the implicit operator with symmetric Gauss-Seidel
//! sweeps: the forward sweep updates points in an order where "lower"
//! neighbours (`i−1`, `j−1`, `k−1`) already carry new values, the
//! backward sweep mirrors it. The data dependence serializes a
//! lexicographic loop, but all points on a *hyperplane* `i+j+k = const`
//! are mutually independent — the pipeline reimplementation the paper
//! mentions ("the linear solver … was reimplemented using a pipeline
//! algorithm to enhance efficiency"). We provide both the lexicographic
//! reference and the hyperplane form (rayon-parallel inside each
//! plane) and test them for *bitwise* agreement; the ablation bench
//! compares their throughput.

use rayon::prelude::*;

use crate::grid::Grid3;

/// Coefficients of the model operator
/// `A u = diag·u − off·(Σ six neighbours)`; `diag > 6·off` gives
/// diagonal dominance and guaranteed sweep convergence.
#[derive(Debug, Clone, Copy)]
pub struct LuSgsCoeffs {
    /// Diagonal coefficient.
    pub diag: f64,
    /// Off-diagonal coupling to each of the six neighbours.
    pub off: f64,
}

impl Default for LuSgsCoeffs {
    fn default() -> Self {
        LuSgsCoeffs {
            diag: 6.5,
            off: 1.0,
        }
    }
}

#[inline]
fn neighbour_sum(u: &Grid3, i: usize, j: usize, k: usize) -> f64 {
    let (ni, nj, nk) = u.dims();
    let mut s = 0.0;
    if i > 0 {
        s += u.get(i - 1, j, k);
    }
    if j > 0 {
        s += u.get(i, j - 1, k);
    }
    if k > 0 {
        s += u.get(i, j, k - 1);
    }
    if i + 1 < ni {
        s += u.get(i + 1, j, k);
    }
    if j + 1 < nj {
        s += u.get(i, j + 1, k);
    }
    if k + 1 < nk {
        s += u.get(i, j, k + 1);
    }
    s
}

/// Forward Gauss-Seidel sweep in strict lexicographic order — the
/// reference implementation.
pub fn forward_sweep_lex(u: &mut Grid3, rhs: &Grid3, c: LuSgsCoeffs) {
    let (ni, nj, nk) = u.dims();
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                let acc = rhs.get(i, j, k) + c.off * neighbour_sum(u, i, j, k);
                u.set(i, j, k, acc / c.diag);
            }
        }
    }
}

/// Backward Gauss-Seidel sweep in reverse lexicographic order.
pub fn backward_sweep_lex(u: &mut Grid3, rhs: &Grid3, c: LuSgsCoeffs) {
    let (ni, nj, nk) = u.dims();
    for i in (0..ni).rev() {
        for j in (0..nj).rev() {
            for k in (0..nk).rev() {
                let acc = rhs.get(i, j, k) + c.off * neighbour_sum(u, i, j, k);
                u.set(i, j, k, acc / c.diag);
            }
        }
    }
}

/// Forward sweep by hyperplanes `i+j+k = h`, each plane processed in
/// parallel — the pipelined form. Bitwise identical to
/// [`forward_sweep_lex`]: a point's lower neighbours live on plane
/// `h−1` (already final) and its upper neighbours on `h+1` (still
/// old), exactly as in the lexicographic order.
pub fn forward_sweep_hyperplane(u: &mut Grid3, rhs: &Grid3, c: LuSgsCoeffs) {
    let planes = {
        let (ni, nj, nk) = u.dims();
        hyperplanes(ni, nj, nk)
    };
    for plane in &planes {
        let updates: Vec<(usize, f64)> = plane
            .par_iter()
            .map(|&(i, j, k)| {
                let acc = rhs.get(i, j, k) + c.off * neighbour_sum(u, i, j, k);
                (u.idx(i, j, k), acc / c.diag)
            })
            .collect();
        let slice = u.as_mut_slice();
        for (idx, v) in updates {
            slice[idx] = v;
        }
    }
}

/// Enumerate hyperplanes in sweep order.
pub fn hyperplanes(ni: usize, nj: usize, nk: usize) -> Vec<Vec<(usize, usize, usize)>> {
    let hmax = ni + nj + nk - 2;
    let mut planes: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); hmax + 1];
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                planes[i + j + k].push((i, j, k));
            }
        }
    }
    planes
}

/// One full LU-SGS iteration: forward then backward sweep (symmetric
/// Gauss-Seidel).
pub fn lusgs_iteration(u: &mut Grid3, rhs: &Grid3, c: LuSgsCoeffs) {
    forward_sweep_lex(u, rhs, c);
    backward_sweep_lex(u, rhs, c);
}

/// L2 residual `‖rhs − A u‖` of the model operator.
pub fn model_residual(u: &Grid3, rhs: &Grid3, c: LuSgsCoeffs) -> f64 {
    let (ni, nj, nk) = u.dims();
    let mut sum = 0.0;
    for i in 0..ni {
        for j in 0..nj {
            for k in 0..nk {
                let au = c.diag * u.get(i, j, k) - c.off * neighbour_sum(u, i, j, k);
                let r = rhs.get(i, j, k) - au;
                sum += r * r;
            }
        }
    }
    (sum / (ni * nj * nk) as f64).sqrt()
}

/// Flops per grid point of one LU-SGS iteration of the 5-variable
/// Navier-Stokes form (two sweeps of a 5×5 block solve + flux terms).
pub const LUSGS_FLOPS_PER_POINT: f64 = 420.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn rhs_grid(n: usize) -> Grid3 {
        Grid3::from_fn(n, n, n, |i, j, k| ((i * 7 + j * 3 + k) % 5) as f64 - 2.0)
    }

    #[test]
    fn hyperplane_sweep_matches_lexicographic_exactly() {
        let n = 10;
        let rhs = rhs_grid(n);
        let c = LuSgsCoeffs::default();
        let mut u_lex = Grid3::from_fn(n, n, n, |i, j, k| (i + j + k) as f64 * 0.01);
        let mut u_hyp = u_lex.clone();
        forward_sweep_lex(&mut u_lex, &rhs, c);
        forward_sweep_hyperplane(&mut u_hyp, &rhs, c);
        for (a, b) in u_lex.as_slice().iter().zip(u_hyp.as_slice()) {
            assert_eq!(a, b, "hyperplane ordering must be bitwise identical");
        }
    }

    #[test]
    fn hyperplane_enumeration_is_complete_and_ordered() {
        let (ni, nj, nk) = (3, 4, 5);
        let planes = hyperplanes(ni, nj, nk);
        let total: usize = planes.iter().map(Vec::len).sum();
        assert_eq!(total, ni * nj * nk);
        for (h, plane) in planes.iter().enumerate() {
            for &(i, j, k) in plane {
                assert_eq!(i + j + k, h);
            }
        }
        // Pipeline width peaks in the middle.
        let widths: Vec<usize> = planes.iter().map(Vec::len).collect();
        let max_w = *widths.iter().max().unwrap();
        assert!(max_w > widths[0] && max_w > *widths.last().unwrap());
    }

    #[test]
    fn iterations_converge_on_dominant_operator() {
        let n = 12;
        let rhs = rhs_grid(n);
        let c = LuSgsCoeffs {
            diag: 7.0,
            off: 1.0,
        };
        let mut u = Grid3::zeros(n, n, n);
        let r0 = model_residual(&u, &rhs, c);
        let mut last = f64::INFINITY;
        for _ in 0..25 {
            lusgs_iteration(&mut u, &rhs, c);
            let r = model_residual(&u, &rhs, c);
            assert!(r <= last * 1.0001, "residual must not grow: {r} > {last}");
            last = r;
        }
        assert!(last < r0 * 1e-6, "did not converge: {last} vs initial {r0}");
    }

    #[test]
    fn solution_satisfies_operator() {
        let n = 8;
        let rhs = rhs_grid(n);
        let c = LuSgsCoeffs {
            diag: 8.0,
            off: 1.0,
        };
        let mut u = Grid3::zeros(n, n, n);
        for _ in 0..60 {
            lusgs_iteration(&mut u, &rhs, c);
        }
        assert!(model_residual(&u, &rhs, c) < 1e-10);
    }

    #[test]
    fn forward_then_backward_touches_every_point() {
        let n = 6;
        let rhs = Grid3::from_fn(n, n, n, |_, _, _| 1.0);
        let mut u = Grid3::zeros(n, n, n);
        lusgs_iteration(&mut u, &rhs, LuSgsCoeffs::default());
        for v in u.as_slice() {
            assert!(*v > 0.0);
        }
    }
}
