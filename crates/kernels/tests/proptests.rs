//! Property-based tests over the computational kernels.

use columbia_kernels::btsolve::{block_thomas, mat_vec, Mat5, Vec5, NVAR};
use columbia_kernels::complex::Complex;
use columbia_kernels::dgemm::{dgemm_blocked, dgemm_naive};
use columbia_kernels::fft::{fft, ifft};
use columbia_kernels::grid::Grid3;
use columbia_kernels::linegs::thomas_scalar;
use columbia_kernels::lusgs::{forward_sweep_hyperplane, forward_sweep_lex, LuSgsCoeffs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_roundtrip_recovers_any_signal(
        reals in prop::collection::vec(-100.0f64..100.0, 64),
        imags in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let orig: Vec<Complex> = reals
            .iter()
            .zip(&imags)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(
        xs in prop::collection::vec(-10.0f64..10.0, 32),
        ys in prop::collection::vec(-10.0f64..10.0, 32),
        alpha in -5.0f64..5.0,
    ) {
        let x: Vec<Complex> = xs.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let y: Vec<Complex> = ys.iter().map(|&v| Complex::new(0.0, v)).collect();
        // FFT(αx + y)
        let mut sum: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| a.scale(alpha) + *b)
            .collect();
        fft(&mut sum);
        // αFFT(x) + FFT(y)
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft(&mut fx);
        fft(&mut fy);
        for i in 0..32 {
            let want = fx[i].scale(alpha) + fy[i];
            prop_assert!((sum[i] - want).abs() < 1e-7);
        }
    }

    #[test]
    fn dgemm_blocked_equals_naive_any_shape(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c1 = vec![0.5; m * n];
        let mut c2 = vec![0.5; m * n];
        dgemm_naive(m, n, k, 1.7, &a, &b, 0.3, &mut c1);
        dgemm_blocked(m, n, k, 1.7, &a, &b, 0.3, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn thomas_matches_direct_solution(
        d in prop::collection::vec(-10.0f64..10.0, 1..20),
        b in 3.0f64..8.0,
    ) {
        // Solve with Thomas, verify by applying the operator.
        let n = d.len();
        let mut x = d.clone();
        thomas_scalar(-1.0, b, -1.0, &mut x);
        for m in 0..n {
            let mut lhs = b * x[m];
            if m > 0 {
                lhs -= x[m - 1];
            }
            if m + 1 < n {
                lhs -= x[m + 1];
            }
            prop_assert!((lhs - d[m]).abs() < 1e-8);
        }
    }

    #[test]
    fn block_thomas_residual_is_zero(
        seed in 0u64..500,
        n in 2usize..10,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rand_block = |dominant: bool| -> Mat5 {
            let mut m = [[0.0; NVAR]; NVAR];
            for (i, row) in m.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = rng.gen_range(-1.0..1.0);
                    if dominant && i == j {
                        *v += 12.0;
                    }
                }
            }
            m
        };
        let lower: Vec<Mat5> = (0..n).map(|_| rand_block(false)).collect();
        let diag: Vec<Mat5> = (0..n).map(|_| rand_block(true)).collect();
        let upper: Vec<Mat5> = (0..n).map(|_| rand_block(false)).collect();
        let rhs0: Vec<Vec5> = (0..n)
            .map(|_| {
                let mut v = [0.0; NVAR];
                for e in v.iter_mut() {
                    *e = rng.gen_range(-3.0..3.0);
                }
                v
            })
            .collect();
        let mut x = rhs0.clone();
        block_thomas(&lower, &diag, &upper, &mut x);
        // Apply the operator to x and compare against rhs0.
        for i in 0..n {
            let mut got = mat_vec(&diag[i], &x[i]);
            if i > 0 {
                let l = mat_vec(&lower[i], &x[i - 1]);
                for v in 0..NVAR {
                    got[v] += l[v];
                }
            }
            if i + 1 < n {
                let u = mat_vec(&upper[i], &x[i + 1]);
                for v in 0..NVAR {
                    got[v] += u[v];
                }
            }
            for v in 0..NVAR {
                prop_assert!((got[v] - rhs0[i][v]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hyperplane_sweep_bitwise_equals_lexicographic(
        seed in 0u64..200,
        ni in 2usize..8,
        nj in 2usize..8,
        nk in 2usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rhs = Grid3::from_fn(ni, nj, nk, |_, _, _| rng.gen_range(-5.0..5.0));
        let init = Grid3::from_fn(ni, nj, nk, |_, _, _| rng.gen_range(-1.0..1.0));
        let mut a = init.clone();
        let mut b = init;
        forward_sweep_lex(&mut a, &rhs, LuSgsCoeffs::default());
        forward_sweep_hyperplane(&mut b, &rhs, LuSgsCoeffs::default());
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
