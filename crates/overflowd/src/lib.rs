//! OVERFLOW-D: compressible overset-grid rotor-wake simulations
//! (§3.5, §4.1.4, Table 3, Table 4, Table 6).
//!
//! OVERFLOW-D advances a time-loop over a grid-loop: each block solves
//! the flow equations, and overlapping boundary points update from the
//! previous step through overset interpolation. The hybrid version
//! bin-packs blocks into groups (one MPI process each, OpenMP inside)
//! and exchanges inter-group boundaries with asynchronous MPI — an
//! all-to-all pattern every step. The LU-SGS linear solver was
//! reimplemented as a pipeline for Columbia's cache-based processors.
//!
//! * [`solver`] — a real miniature two-block overset solver: LU-SGS
//!   relaxation per block + donor-interpolated boundary updates;
//! * [`perf`] — the Table 3/6 runner on the 1,679-block, 75-million-
//!   point rotor system, plus the Table 4 compiler comparison.

pub mod perf;
pub mod solver;

pub use perf::{step_times, OverflowConfig, StepTimes};
pub use solver::OversetPair;
