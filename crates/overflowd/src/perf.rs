//! Tables 3, 4, and 6: OVERFLOW-D on the rotor-wake system.
//!
//! The experiment: 1,679 blocks, ~75 million points, hybrid
//! MPI+OpenMP. Table 3 compares communication and execution time per
//! step on the 3700 and BX2b for 8–508 CPUs; Table 6 repeats the
//! multi-node runs over NUMAlink4 and InfiniBand; Table 4 compares
//! compilers 7.1 and 8.1 (on the 3700). Behaviours the model carries:
//!
//! * BX2b ~2× faster on average, ~3× at 508 CPUs (clock + 9 MB L3 on
//!   the per-block hot set + doubled exchange bandwidth);
//! * 3700 scaling flattens past 256 CPUs: with 508 processes and 1,679
//!   blocks no grouping balances, per-rank work shrinks to ~150k
//!   points, and the comm/exec ratio climbs from ~0.3 to >0.5;
//! * a per-step serial cost (grid-loop bookkeeping + the §4.6.4 I/O on
//!   a shared-filesystem-less cluster) that caps scalability;
//! * NUMAlink4 totals ~10% better than InfiniBand across nodes, while
//!   *reported* comm is slightly lower on IB (card offload shifts the
//!   wait out of the MPI timers — the paper's paradoxical reversal).

use columbia_machine::cluster::{ClusterConfig, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_overset::systems::rotor_wake;
use columbia_overset::{group_blocks, GridSystem};
use columbia_runtime::compiler::{CompilerVersion, KernelClass};
use columbia_runtime::compute::WorkPhase;
use columbia_runtime::exec::{execute, ExecConfig, SpecOp, WorkloadSpec};
use columbia_runtime::pinning::Pinning;
use columbia_runtime::placement::{Placement, PlacementStrategy};
use columbia_simnet::fabric::MptVersion;
use columbia_simnet::{FaultPlan, SimError};

/// Flops per point per step (RHS + pipelined LU-SGS sweeps).
pub const FLOPS_PER_POINT: f64 = 1500.0;

/// Memory traffic per point per step, bytes.
pub const BYTES_PER_POINT: f64 = 1200.0;

/// Hot working set of the pipelined LU-SGS sweep: a few active
/// hyperplanes of the current block plus Jacobian scratch — roughly
/// block-size independent at ~7 MB, which lands between the 6 MB L3 of
/// the 3700/BX2a and the 9 MB of the BX2b (the §4.1.4 attribution of
/// the BX2b's computation-time reduction).
pub const HOT_WORKING_SET: u64 = 7 << 20;

/// Inter-group boundary traffic per step: the aggregated overset
/// fringe, ~5 variables × 8 bytes × fringe points.
pub const BOUNDARY_BYTES_PER_FRINGE_POINT: f64 = 40.0;

/// Per-step serial seconds on a 1.5 GHz part: grid-loop bookkeeping,
/// connectivity updates, and the §4.6.4 I/O activity. Scales inversely
/// with clock/cache like the rest of the serial code.
pub const STEP_SERIAL_SECONDS_3700: f64 = 0.30;

/// One run configuration.
#[derive(Debug, Clone, Copy)]
pub struct OverflowConfig {
    /// Node flavour.
    pub kind: NodeKind,
    /// MPI processes (groups).
    pub procs: usize,
    /// OpenMP threads per process.
    pub threads: usize,
    /// Nodes spanned.
    pub nodes: u32,
    /// Inter-node fabric.
    pub inter: InterNodeFabric,
    /// Compiler.
    pub compiler: CompilerVersion,
}

impl OverflowConfig {
    /// Single-node pinned run (Table 3's columns).
    pub fn table3(kind: NodeKind, cpus: usize) -> Self {
        OverflowConfig {
            kind,
            procs: cpus,
            threads: 1,
            nodes: 1,
            inter: InterNodeFabric::NumaLink4,
            compiler: CompilerVersion::V8_1,
        }
    }

    /// Total CPUs.
    pub fn total_cpus(&self) -> usize {
        self.procs * self.threads
    }
}

/// Per-step times, split as the paper's tables report them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimes {
    /// Communication seconds per step (as the MPI timers report).
    pub comm: f64,
    /// Total execution seconds per step.
    pub exec: f64,
}

impl StepTimes {
    /// The comm/exec ratio the paper uses to diagnose the 3700's
    /// flattening (§4.1.4).
    pub fn comm_ratio(&self) -> f64 {
        self.comm / self.exec
    }
}

fn spec_for(system: &GridSystem, cfg: &OverflowConfig) -> WorkloadSpec {
    let grouping = group_blocks(system, cfg.procs);
    let total_fringe: u64 = system.blocks.iter().map(|b| b.fringe_points()).sum();
    let boundary_total = total_fringe as f64 * BOUNDARY_BYTES_PER_FRINGE_POINT;
    let bytes_per_pair = ((boundary_total / (cfg.procs * cfg.procs.max(2)) as f64) as u64).max(64);
    // The serial per-step cost, expressed as flops so clock, cache and
    // compiler treatment apply to it too.
    let serial_flops = STEP_SERIAL_SECONDS_3700 * 6.0e9 * 0.045;
    let mut spec = WorkloadSpec::with_ranks(cfg.procs);
    const SIM_STEPS: u32 = 2;
    for _ in 0..SIM_STEPS {
        for (r, ops) in spec.ranks.iter_mut().enumerate() {
            let pts = grouping.load[r] as f64;
            let phase = WorkPhase::new(
                pts * FLOPS_PER_POINT + serial_flops,
                pts * BYTES_PER_POINT,
                HOT_WORKING_SET,
                0.045,
                KernelClass::LuSgs,
            )
            .with_serial_fraction(0.06)
            .with_remote_share(0.5);
            ops.push(SpecOp::Work(phase));
            // Inter-group boundary exchange: all-to-all pattern every
            // step (§4.1.4).
            if cfg.procs >= 2 {
                ops.push(SpecOp::AllToAll { bytes_per_pair });
            }
        }
    }
    spec
}

/// Simulate one configuration, returning per-step times or the typed
/// [`SimError`] a failed run diagnoses itself with.
pub fn step_times(cfg: &OverflowConfig) -> Result<StepTimes, SimError> {
    assert!(cfg.procs >= 1 && cfg.threads >= 1 && cfg.nodes >= 1);
    let system = rotor_wake(1.0);
    assert!(
        cfg.procs <= system.len(),
        "more MPI processes than blocks cannot be grouped"
    );
    let cluster = ClusterConfig::uniform(cfg.kind, cfg.nodes);
    let nodes: Vec<NodeId> = (0..cfg.nodes).map(NodeId).collect();
    // Multi-node runs spread processes evenly across the nodes (the
    // paper's Table 6 layout); single-node runs pack densely, staying
    // under the boot cpuset unless the full 512 are requested.
    let spread = (cfg.total_cpus() as u32).div_ceil(cfg.nodes);
    let cap = if cfg.total_cpus().is_multiple_of(512) {
        512
    } else {
        spread.clamp(1, 508)
    };
    let strategy = if cap == 512 {
        PlacementStrategy::Dense
    } else {
        PlacementStrategy::DenseCapped(cap)
    };
    let placement = Placement::new(&cluster, &nodes, cfg.procs, cfg.threads, strategy);
    let spec = spec_for(&system, cfg);
    let exec_cfg = ExecConfig {
        cluster,
        nodes,
        inter: cfg.inter,
        mpt: MptVersion::Beta,
        placement,
        compiler: cfg.compiler,
        pinning: Pinning::Pinned,
        faults: FaultPlan::none(),
    };
    let out = execute(&spec, &exec_cfg)?;
    const SIM_STEPS: f64 = 2.0;
    let mut comm = out.mean_comm() / SIM_STEPS;
    let exec = out.makespan / SIM_STEPS;
    // Table 6's reversal: the InfiniBand cards run the transfer engine,
    // so the in-application MPI timers attribute less of the wait to
    // "communication" even though the wall clock is longer.
    if cfg.nodes > 1 && cfg.inter == InterNodeFabric::InfiniBand {
        comm *= 0.80;
    }
    Ok(StepTimes { comm, exec })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy-machine shorthand: these table sweeps must never fail.
    fn step_times(cfg: &OverflowConfig) -> StepTimes {
        super::step_times(cfg).unwrap()
    }

    fn t3(kind: NodeKind, cpus: usize) -> StepTimes {
        step_times(&OverflowConfig::table3(kind, cpus))
    }

    #[test]
    fn bx2b_about_2x_faster_on_average() {
        // Table 3: "On average, OVERFLOW-D runs almost 2x faster on the
        // BX2b than the 3700."
        let mut ratios = Vec::new();
        for cpus in [32usize, 64, 128, 256] {
            let r = t3(NodeKind::Altix3700, cpus).exec / t3(NodeKind::Bx2b, cpus).exec;
            ratios.push(r);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((1.5..2.6).contains(&mean), "mean ratio {mean} ({ratios:?})");
    }

    #[test]
    fn bx2b_gap_grows_at_508() {
        // Table 3: "more than a factor of 3x on 508 CPUs" — comm and
        // the serial tail weigh more, and BX2b shrinks both.
        let gap508 = t3(NodeKind::Altix3700, 508).exec / t3(NodeKind::Bx2b, 508).exec;
        let gap64 = t3(NodeKind::Altix3700, 64).exec / t3(NodeKind::Bx2b, 64).exec;
        assert!(gap508 > gap64, "gap should grow: 64→{gap64}, 508→{gap508}");
    }

    #[test]
    fn comm_ratio_climbs_on_the_3700() {
        // §4.1.4: comm/exec ≈ 0.3 at 256 CPUs, > 0.5 at 508.
        let r256 = t3(NodeKind::Altix3700, 256).comm_ratio();
        let r508 = t3(NodeKind::Altix3700, 508).comm_ratio();
        assert!(r508 > r256, "ratio must climb: {r256} → {r508}");
        assert!(r256 > 0.1 && r256 < 0.55, "r256={r256}");
        assert!(r508 > 0.3, "r508={r508}");
    }

    #[test]
    fn scaling_flattens_beyond_256_on_3700() {
        // Table 3: "reasonably good up to 64 processors, but flattens
        // beyond 256."
        let e64 = t3(NodeKind::Altix3700, 64).exec;
        let e256 = t3(NodeKind::Altix3700, 256).exec;
        let e508 = t3(NodeKind::Altix3700, 508).exec;
        // 64→256: still gains meaningfully.
        assert!(e256 < 0.7 * e64, "e64={e64} e256={e256}");
        // 256→508: barely gains (flattened).
        assert!(e508 > 0.7 * e256, "e256={e256} e508={e508}");
    }

    #[test]
    fn communication_reduced_by_more_than_half_on_bx2b() {
        // Table 3: "the communication time is also reduced by more than
        // 50%."
        let c3700 = t3(NodeKind::Altix3700, 256).comm;
        let cbx2b = t3(NodeKind::Bx2b, 256).comm;
        // The paper reports "more than 50%"; the model lands at 40-55%
        // (waits shrink with the 1.6x compute gain, transfers with the
        // doubled link bandwidth).
        assert!(cbx2b < 0.7 * c3700, "3700={c3700} bx2b={cbx2b}");
    }

    #[test]
    fn compiler_71_wins_below_64_procs_only() {
        // Table 4: 7.1 better by 20-40% under 64 processors, identical
        // above.
        let mk = |compiler, procs| {
            step_times(&OverflowConfig {
                compiler,
                ..OverflowConfig::table3(NodeKind::Altix3700, procs)
            })
            .exec
        };
        let small = mk(CompilerVersion::V8_1, 32) / mk(CompilerVersion::V7_1, 32);
        assert!(small > 1.15, "7.1 advantage at 32 procs: {small}");
        let large = mk(CompilerVersion::V8_1, 128) / mk(CompilerVersion::V7_1, 128);
        assert!((large - 1.0).abs() < 0.05, "no advantage at 128: {large}");
    }

    #[test]
    fn numalink_totals_beat_infiniband_but_comm_reverses() {
        // Table 6: "total execution times obtained via NUMAlink4 are
        // generally about 10% better; however, the reverse appears to
        // be true for the communication times."
        let mk = |inter| {
            step_times(&OverflowConfig {
                kind: NodeKind::Bx2b,
                procs: 508,
                threads: 1,
                nodes: 2,
                inter,
                compiler: CompilerVersion::V8_1,
            })
        };
        let nl = mk(InterNodeFabric::NumaLink4);
        let ib = mk(InterNodeFabric::InfiniBand);
        assert!(
            ib.exec > nl.exec,
            "NL4 total must win: {} vs {}",
            nl.exec,
            ib.exec
        );
        assert!(ib.exec < 1.6 * nl.exec, "but not by a large factor");
        assert!(
            ib.comm < nl.comm,
            "reported comm reverses: {} vs {}",
            ib.comm,
            nl.comm
        );
    }

    #[test]
    fn multinode_distribution_does_not_hurt() {
        // Table 6: "We did not find any pronounced increase in the
        // execution ... for the same total number of processors when
        // distributed across multiple nodes."
        let one = step_times(&OverflowConfig {
            kind: NodeKind::Bx2b,
            procs: 256,
            threads: 1,
            nodes: 1,
            inter: InterNodeFabric::NumaLink4,
            compiler: CompilerVersion::V8_1,
        });
        let two = step_times(&OverflowConfig {
            kind: NodeKind::Bx2b,
            procs: 256,
            threads: 1,
            nodes: 2,
            inter: InterNodeFabric::NumaLink4,
            compiler: CompilerVersion::V8_1,
        });
        assert!(
            two.exec < 1.25 * one.exec,
            "one={} two={}",
            one.exec,
            two.exec
        );
    }

    #[test]
    #[should_panic(expected = "more MPI processes than blocks")]
    fn procs_capped_by_block_count() {
        let _ = step_times(&OverflowConfig::table3(NodeKind::Bx2b, 1700));
    }
}
