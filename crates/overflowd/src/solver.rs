//! A real miniature overset solver: two overlapping blocks advance an
//! implicit model equation with LU-SGS sweeps, exchanging fringe
//! values by trilinear donor interpolation every step — the
//! time-loop / grid-loop / boundary-update structure of §3.5 at host
//! scale.

use columbia_kernels::grid::Grid3;
use columbia_kernels::lusgs::{lusgs_iteration, model_residual, LuSgsCoeffs};
use columbia_overset::block::{Bbox, Block};
use columbia_overset::connect::find_donor;

/// Two overlapping blocks with per-block fields.
#[derive(Debug, Clone)]
pub struct OversetPair {
    /// Grid components (overlapping along x).
    pub blocks: [Block; 2],
    /// Solution fields.
    pub fields: [Grid3; 2],
    /// Right-hand sides.
    pub rhs: [Grid3; 2],
    /// Solver coefficients.
    pub coeffs: LuSgsCoeffs,
}

impl OversetPair {
    /// Two `n³` blocks overlapping by 40% along x, with a smooth
    /// right-hand side continuous across the pair.
    pub fn new(n: usize) -> Self {
        assert!(n >= 6);
        let mk_block = |id: usize, x0: f64| Block {
            id,
            dims: (n, n, n),
            bbox: Bbox {
                min: [x0, 0.0, 0.0],
                max: [x0 + 1.0, 1.0, 1.0],
            },
        };
        let blocks = [mk_block(0, 0.0), mk_block(1, 0.6)];
        let rhs_fn = |b: &Block, i: usize, j: usize, k: usize| {
            let p = b.point(i, j, k);
            (2.0 * p[0]).sin() + 0.5 * (3.0 * p[1]).cos() + 0.25 * p[2]
        };
        let rhs = [
            Grid3::from_fn(n, n, n, |i, j, k| rhs_fn(&blocks[0], i, j, k)),
            Grid3::from_fn(n, n, n, |i, j, k| rhs_fn(&blocks[1], i, j, k)),
        ];
        OversetPair {
            blocks,
            fields: [Grid3::zeros(n, n, n), Grid3::zeros(n, n, n)],
            rhs,
            coeffs: LuSgsCoeffs {
                diag: 7.0,
                off: 1.0,
            },
        }
    }

    /// Update the fringe (outermost x-plane facing the partner) of
    /// each block from its donor in the other block.
    pub fn exchange_boundaries(&mut self) {
        let (n_i, n_j, n_k) = self.fields[0].dims();
        for recv in 0..2 {
            let donor_idx = 1 - recv;
            // The fringe plane facing the partner: the max-x face of
            // block 0, the min-x face of block 1.
            let i_face = if recv == 0 { n_i - 1 } else { 0 };
            let mut updates = Vec::new();
            for j in 0..n_j {
                for k in 0..n_k {
                    let p = self.blocks[recv].point(i_face, j, k);
                    if let Some(st) = find_donor(&self.blocks[donor_idx], p) {
                        let donor_field = &self.fields[donor_idx];
                        let v = st.interpolate(|i, j, k| donor_field.get(i, j, k));
                        updates.push((j, k, v));
                    }
                }
            }
            for (j, k, v) in updates {
                self.fields[recv].set(i_face, j, k, v);
            }
        }
    }

    /// One time step: grid-loop (LU-SGS per block), then the overset
    /// boundary update.
    pub fn step(&mut self) {
        for b in 0..2 {
            lusgs_iteration(&mut self.fields[b], &self.rhs[b], self.coeffs);
        }
        self.exchange_boundaries();
    }

    /// Combined residual over both blocks.
    pub fn residual(&self) -> f64 {
        (0..2)
            .map(|b| model_residual(&self.fields[b], &self.rhs[b], self.coeffs))
            .sum()
    }

    /// Largest mismatch between each block's fringe value and the
    /// donor interpolation it should equal (0 right after an
    /// exchange).
    pub fn boundary_mismatch(&self) -> f64 {
        let (n_i, n_j, n_k) = self.fields[0].dims();
        let mut worst = 0.0f64;
        for recv in 0..2 {
            let donor_idx = 1 - recv;
            let i_face = if recv == 0 { n_i - 1 } else { 0 };
            for j in 0..n_j {
                for k in 0..n_k {
                    let p = self.blocks[recv].point(i_face, j, k);
                    if let Some(st) = find_donor(&self.blocks[donor_idx], p) {
                        let donor_field = &self.fields[donor_idx];
                        let v = st.interpolate(|i, j, k| donor_field.get(i, j, k));
                        worst = worst.max((self.fields[recv].get(i_face, j, k) - v).abs());
                    }
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_overlap() {
        let p = OversetPair::new(8);
        assert!(p.blocks[0].bbox.overlaps(&p.blocks[1].bbox));
    }

    #[test]
    fn residual_contracts_over_steps() {
        let mut p = OversetPair::new(10);
        let r0 = p.residual();
        for _ in 0..15 {
            p.step();
        }
        // The fringe overwrite keeps a Schwarz-style boundary residual
        // alive, so contraction is steady rather than geometric.
        let r = p.residual();
        assert!(r < 0.35 * r0, "r0={r0} r={r}");
        let mut q = p.clone();
        for _ in 0..15 {
            q.step();
        }
        assert!(q.residual() <= r * 1.0001, "must keep contracting");
    }

    #[test]
    fn boundaries_consistent_after_exchange() {
        let mut p = OversetPair::new(10);
        for _ in 0..5 {
            p.step();
        }
        assert!(p.boundary_mismatch() < 1e-12);
    }

    #[test]
    fn exchange_actually_moves_data() {
        let mut p = OversetPair::new(8);
        // Give the donor block a distinctive field.
        let (ni, nj, nk) = p.fields[1].dims();
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    p.fields[1].set(i, j, k, 42.0);
                }
            }
        }
        p.exchange_boundaries();
        // Block 0's max-x fringe now carries interpolated 42s.
        let got = p.fields[0].get(ni - 1, 3, 3);
        assert!((got - 42.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn solution_is_continuous_across_the_overlap() {
        let mut p = OversetPair::new(12);
        for _ in 0..30 {
            p.step();
        }
        // Sample a physical point inside the overlap from both blocks.
        let probe = [0.8, 0.5, 0.5];
        let va = find_donor(&p.blocks[0], probe)
            .unwrap()
            .interpolate(|i, j, k| p.fields[0].get(i, j, k));
        let vb = find_donor(&p.blocks[1], probe)
            .unwrap()
            .interpolate(|i, j, k| p.fields[1].get(i, j, k));
        assert!(
            (va - vb).abs() < 0.05 * va.abs().max(1.0),
            "block solutions diverge in the overlap: {va} vs {vb}"
        );
    }
}
