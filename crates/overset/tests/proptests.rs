//! Property-based tests over the overset substrate.

use columbia_overset::block::{Bbox, Block};
use columbia_overset::connect::find_donor;
use columbia_overset::group_blocks;
use columbia_overset::systems::{rotor_wake, turbopump};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn donor_weights_always_partition_unity(
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        z in 0.0f64..1.0,
        n in 4usize..30,
    ) {
        let donor = Block {
            id: 0,
            dims: (n, n, n),
            bbox: Bbox { min: [0.0; 3], max: [1.0; 3] },
        };
        let st = find_donor(&donor, [x, y, z]).expect("inside the box");
        prop_assert!((st.weight_sum() - 1.0).abs() < 1e-12);
        prop_assert!(st.weights.iter().all(|&w| (-1e-12..=1.0 + 1e-12).contains(&w)));
        // Donor cell is a valid lower corner.
        let (ci, cj, ck) = st.cell;
        prop_assert!(ci + 1 < n && cj + 1 < n && ck + 1 < n);
    }

    #[test]
    fn interpolation_bounded_by_field_extremes(
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        z in 0.0f64..1.0,
        lo in -10.0f64..0.0,
        hi in 0.0f64..10.0,
    ) {
        // Trilinear interpolation of a field in [lo, hi] stays in
        // [lo, hi] (convex combination).
        let donor = Block {
            id: 0,
            dims: (8, 8, 8),
            bbox: Bbox { min: [0.0; 3], max: [1.0; 3] },
        };
        let st = find_donor(&donor, [x, y, z]).unwrap();
        let field = |i: usize, j: usize, k: usize| {
            lo + (hi - lo) * (((i * 31 + j * 17 + k * 7) % 13) as f64 / 12.0)
        };
        let v = st.interpolate(field);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v={v} not in [{lo}, {hi}]");
    }

    #[test]
    fn grouping_partitions_any_system(
        scale_pct in 2u32..10,
        ngroups in 1usize..64,
    ) {
        let sys = turbopump(scale_pct as f64 / 100.0);
        prop_assume!(sys.len() >= ngroups);
        let g = group_blocks(&sys, ngroups);
        let total: u64 = g.load.iter().sum();
        prop_assert_eq!(total, sys.total_points());
        let assigned: usize = g.groups.iter().map(Vec::len).sum();
        prop_assert_eq!(assigned, sys.len());
        prop_assert!(g.imbalance() >= 1.0 - 1e-12);
        prop_assert!((0.0..=1.0).contains(&g.internalized_fraction));
    }

    #[test]
    fn more_groups_never_reduce_imbalance(
        few in 4usize..16,
        extra in 1usize..200,
    ) {
        // With a fixed block set, adding groups can only make the
        // max/mean ratio worse or equal (fewer blocks per bin).
        let sys = rotor_wake(0.03);
        let many = few + extra;
        prop_assume!(sys.len() >= many);
        let g_few = group_blocks(&sys, few);
        let g_many = group_blocks(&sys, many);
        prop_assert!(g_many.imbalance() >= g_few.imbalance() * 0.95,
            "few={} many={}", g_few.imbalance(), g_many.imbalance());
    }
}
