//! Deterministic generators for the paper's two grid systems.
//!
//! We do not have NASA's proprietary grids, so we synthesize systems
//! with the published structure (DESIGN.md documents the
//! substitution): the same block counts, the same aggregate point
//! counts at full scale, comparable size spreads, and genuine
//! bounding-box connectivity. A `scale` parameter shrinks linear
//! dimensions for host-scale real runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{Bbox, Block, GridSystem};

/// Published shape of the INS3D turbopump system (§3.4): 267 blocks,
/// 66 million points.
pub const TURBOPUMP_BLOCKS: usize = 267;
/// Aggregate points of the full turbopump grid.
pub const TURBOPUMP_POINTS: u64 = 66_000_000;

/// Published shape of the OVERFLOW-D rotor system (§3.5): 1,679 blocks
/// of various sizes, ~75 million points.
pub const ROTOR_BLOCKS: usize = 1_679;
/// Aggregate points of the full rotor-wake grid.
pub const ROTOR_POINTS: u64 = 75_000_000;

fn dims_for(points: f64, aspect: (f64, f64, f64)) -> (usize, usize, usize) {
    // dims proportional to the aspect with the requested volume.
    let (ax, ay, az) = aspect;
    let unit = (points / (ax * ay * az)).cbrt();
    let d = |a: f64| ((a * unit).round() as usize).max(3);
    (d(ax), d(ay), d(az))
}

/// The turbopump system: three components (inducer blades, flowliner,
/// bellows cavity) arranged in overlapping angular rings.
pub fn turbopump(scale: f64) -> GridSystem {
    assert!(scale > 0.0 && scale <= 1.0);
    let mut rng = StdRng::seed_from_u64(0x7E4B0);
    let mut blocks = Vec::with_capacity(TURBOPUMP_BLOCKS);
    // Component shares: 60 inducer blocks (large, stretched), 90
    // flowliner, 117 cavity (smaller).
    let comp = |i: usize| -> (f64, (f64, f64, f64), f64) {
        if i < 60 {
            (2.2, (3.0, 1.5, 1.0), 0.0) // inducer: big, blade-stretched
        } else if i < 150 {
            (1.0, (2.0, 1.0, 1.0), 2.0) // flowliner ring
        } else {
            (0.55, (1.0, 1.0, 1.0), 4.0) // bellows cavity
        }
    };
    // Normalize so full scale sums to TURBOPUMP_POINTS.
    let weight_sum: f64 = (0..TURBOPUMP_BLOCKS).map(|i| comp(i).0).sum();
    let pts_per_weight = TURBOPUMP_POINTS as f64 / weight_sum;
    for i in 0..TURBOPUMP_BLOCKS {
        let (w, aspect, axial) = comp(i);
        let jitter = rng.gen_range(0.85..1.15);
        let pts = w * pts_per_weight * jitter * scale.powi(3);
        let dims = dims_for(pts, aspect);
        // Ring placement: angular position with deliberate overlap of
        // neighbours; rings advance axially per component.
        let ring = 30.0;
        let theta = (i % 30) as f64 / ring * std::f64::consts::TAU;
        let r = 10.0;
        let c = [
            r * theta.cos(),
            r * theta.sin(),
            axial + (i / 30) as f64 * 0.8,
        ];
        let half = [1.3, 1.3, 0.9];
        blocks.push(Block {
            id: i,
            dims,
            bbox: Bbox {
                min: [c[0] - half[0], c[1] - half[1], c[2] - half[2]],
                max: [c[0] + half[0], c[1] + half[1], c[2] + half[2]],
            },
        });
    }
    GridSystem { blocks }
}

/// The rotor-wake system: 79 large near-body blocks around the hub and
/// blades plus 1,600 uniform off-body wake boxes in a cartesian
/// lattice of overlapping cubes.
pub fn rotor_wake(scale: f64) -> GridSystem {
    assert!(scale > 0.0 && scale <= 1.0);
    let mut rng = StdRng::seed_from_u64(0x0507);
    let near = 79usize;
    let off = ROTOR_BLOCKS - near;
    // Near-body blocks take ~40% of the points, off-body 60%.
    let near_pts = 0.40 * ROTOR_POINTS as f64 / near as f64;
    let off_pts = 0.60 * ROTOR_POINTS as f64 / off as f64;
    let mut blocks = Vec::with_capacity(ROTOR_BLOCKS);
    for i in 0..near {
        let jitter = rng.gen_range(0.75..1.35);
        let dims = dims_for(near_pts * jitter * scale.powi(3), (2.5, 1.2, 1.0));
        let theta = i as f64 / near as f64 * std::f64::consts::TAU;
        let c = [4.0 * theta.cos(), 4.0 * theta.sin(), 0.0];
        blocks.push(Block {
            id: i,
            dims,
            bbox: Bbox {
                min: [c[0] - 1.0, c[1] - 1.0, c[2] - 0.6],
                max: [c[0] + 1.0, c[1] + 1.0, c[2] + 0.6],
            },
        });
    }
    // Off-body lattice: 20×20×4 overlapping cubes.
    let (lx, ly, lz) = (20usize, 20usize, 4usize);
    debug_assert_eq!(lx * ly * lz, off);
    let pitch = 1.8; // < 2.0 edge → neighbours overlap
    for ix in 0..lx {
        for iy in 0..ly {
            for iz in 0..lz {
                let i = near + (ix * ly + iy) * lz + iz;
                let jitter = rng.gen_range(0.9..1.1);
                let dims = dims_for(off_pts * jitter * scale.powi(3), (1.0, 1.0, 1.0));
                let c = [
                    (ix as f64 - lx as f64 / 2.0) * pitch,
                    (iy as f64 - ly as f64 / 2.0) * pitch,
                    1.5 + iz as f64 * pitch,
                ];
                blocks.push(Block {
                    id: i,
                    dims,
                    bbox: Bbox {
                        min: [c[0] - 1.0, c[1] - 1.0, c[2] - 1.0],
                        max: [c[0] + 1.0, c[1] + 1.0, c[2] + 1.0],
                    },
                });
            }
        }
    }
    GridSystem { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbopump_full_scale_matches_paper() {
        let sys = turbopump(1.0);
        assert_eq!(sys.len(), 267);
        let pts = sys.total_points();
        let target = TURBOPUMP_POINTS as f64;
        assert!(
            (pts as f64 - target).abs() / target < 0.10,
            "points={pts} (want ≈66M)"
        );
    }

    #[test]
    fn rotor_full_scale_matches_paper() {
        let sys = rotor_wake(1.0);
        assert_eq!(sys.len(), 1679);
        let pts = sys.total_points();
        let target = ROTOR_POINTS as f64;
        assert!(
            (pts as f64 - target).abs() / target < 0.10,
            "points={pts} (want ≈75M)"
        );
    }

    #[test]
    fn systems_are_deterministic() {
        let a = rotor_wake(0.1);
        let b = rotor_wake(0.1);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn scaled_systems_shrink_points_not_blocks() {
        let full = turbopump(1.0);
        let small = turbopump(0.1);
        assert_eq!(full.len(), small.len());
        assert!(small.total_points() < full.total_points() / 100);
    }

    #[test]
    fn systems_have_connectivity() {
        let sys = rotor_wake(0.05);
        let pairs = sys.overlapping_pairs();
        // Lattice neighbours plus near-body ring: plenty of overlap.
        assert!(pairs.len() > sys.len(), "{} pairs", pairs.len());
    }

    #[test]
    fn rotor_block_sizes_vary() {
        let sys = rotor_wake(1.0);
        let min = sys.blocks.iter().map(Block::points).min().unwrap();
        let max = sys.blocks.iter().map(Block::points).max().unwrap();
        assert!(max > 3 * min, "sizes should vary: {min}..{max}");
    }
}
