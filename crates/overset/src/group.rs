//! Connectivity-aware bin-packing of blocks into process groups.
//!
//! §3.5: "A bin-packing algorithm clusters individual grids into
//! groups, each of which is then assigned to an MPI process. The
//! grouping strategy uses a connectivity test that inspects for an
//! overlap between a pair of grids before assigning them to the same
//! group, regardless of the size of the boundary data." Putting
//! overlapping grids together converts inter-group messages into local
//! memory copies.

use crate::block::GridSystem;

/// Result of grouping a grid system.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// `groups[g]` lists block indices owned by group `g`.
    pub groups: Vec<Vec<usize>>,
    /// Grid points per group.
    pub load: Vec<u64>,
    /// Fraction of overlapping block pairs kept inside one group.
    pub internalized_fraction: f64,
}

impl Grouping {
    /// Max-to-mean load imbalance.
    pub fn imbalance(&self) -> f64 {
        let max = *self.load.iter().max().unwrap_or(&0) as f64;
        let mean = self.load.iter().sum::<u64>() as f64 / self.load.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Group `system` into `ngroups` groups: blocks sorted largest first;
/// each goes to the *connected* group with the lightest load if one
/// has room (below the running mean + the block), otherwise to the
/// globally lightest group.
pub fn group_blocks(system: &GridSystem, ngroups: usize) -> Grouping {
    assert!(ngroups >= 1);
    assert!(
        system.len() >= ngroups,
        "cannot form {ngroups} groups from {} blocks",
        system.len()
    );
    // Adjacency from bounding-box overlap.
    let n = system.len();
    let mut adj = vec![Vec::new(); n];
    for (i, j) in system.overlapping_pairs() {
        adj[i].push(j);
        adj[j].push(i);
    }
    let total: u64 = system.total_points();
    let target = total as f64 / ngroups as f64;

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(system.blocks[b].points()));

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let mut load = vec![0u64; ngroups];
    let mut owner = vec![usize::MAX; n];
    for &b in &order {
        let pts = system.blocks[b].points();
        // Candidate groups already holding a neighbour of b.
        let mut best_connected: Option<usize> = None;
        for &nb in &adj[b] {
            if owner[nb] != usize::MAX {
                let g = owner[nb];
                if load[g] as f64 + pts as f64 <= 1.25 * target
                    && best_connected.map(|c| load[g] < load[c]).unwrap_or(true)
                {
                    best_connected = Some(g);
                }
            }
        }
        let g = best_connected.unwrap_or_else(|| (0..ngroups).min_by_key(|&g| load[g]).unwrap());
        owner[b] = g;
        load[g] += pts;
        groups[g].push(b);
    }

    // Internalized connectivity.
    let pairs = system.overlapping_pairs();
    let internal = pairs.iter().filter(|(i, j)| owner[*i] == owner[*j]).count();
    Grouping {
        groups,
        load,
        internalized_fraction: if pairs.is_empty() {
            1.0
        } else {
            internal as f64 / pairs.len() as f64
        },
    }
}

/// Plain load-only bin packing, ignoring connectivity (baseline for
/// the ablation bench).
pub fn group_blocks_load_only(system: &GridSystem, ngroups: usize) -> Grouping {
    assert!(ngroups >= 1 && system.len() >= ngroups);
    let n = system.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(system.blocks[b].points()));
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let mut load = vec![0u64; ngroups];
    let mut owner = vec![usize::MAX; n];
    for &b in &order {
        let g = (0..ngroups).min_by_key(|&g| load[g]).unwrap();
        owner[b] = g;
        load[g] += system.blocks[b].points();
        groups[g].push(b);
    }
    let pairs = system.overlapping_pairs();
    let internal = pairs.iter().filter(|(i, j)| owner[*i] == owner[*j]).count();
    Grouping {
        groups,
        load,
        internalized_fraction: if pairs.is_empty() {
            1.0
        } else {
            internal as f64 / pairs.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn all_blocks_grouped_once() {
        let sys = systems::rotor_wake(0.02);
        let g = group_blocks(&sys, 16);
        let mut seen = vec![false; sys.len()];
        for grp in &g.groups {
            for &b in grp {
                assert!(!seen[b]);
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grouping_balances_load_reasonably() {
        let sys = systems::rotor_wake(0.05);
        let g = group_blocks(&sys, 32);
        assert!(g.imbalance() < 1.4, "imbalance={}", g.imbalance());
    }

    #[test]
    fn connectivity_grouping_internalizes_more_pairs() {
        let sys = systems::turbopump(0.05);
        let smart = group_blocks(&sys, 12);
        let naive = group_blocks_load_only(&sys, 12);
        assert!(
            smart.internalized_fraction >= naive.internalized_fraction,
            "smart {} vs naive {}",
            smart.internalized_fraction,
            naive.internalized_fraction
        );
    }

    #[test]
    fn few_blocks_per_group_cannot_balance() {
        // §4.1.4: "With 508 MPI processes and only 1679 blocks, it is
        // difficult for any grouping strategy to achieve a proper load
        // balance."
        let sys = systems::rotor_wake(0.02);
        let many = group_blocks(&sys, sys.len() / 2);
        let few = group_blocks(&sys, 8);
        assert!(many.imbalance() > few.imbalance());
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn too_many_groups_rejected() {
        let sys = systems::turbopump(0.02);
        let _ = group_blocks(&sys, sys.len() + 1);
    }
}
