//! Grid blocks and whole grid systems.

use serde::{Deserialize, Serialize};

/// Axis-aligned bounding box in physical space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bbox {
    /// Minimum corner.
    pub min: [f64; 3],
    /// Maximum corner.
    pub max: [f64; 3],
}

impl Bbox {
    /// Whether two boxes overlap (closed intervals).
    pub fn overlaps(&self, other: &Bbox) -> bool {
        (0..3).all(|a| self.min[a] <= other.max[a] && other.min[a] <= self.max[a])
    }

    /// Whether a point lies inside.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| self.min[a] <= p[a] && p[a] <= self.max[a])
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        (0..3)
            .map(|a| (self.max[a] - self.min[a]).max(0.0))
            .product()
    }
}

/// One grid component of an overset system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block id.
    pub id: usize,
    /// Grid dimensions.
    pub dims: (usize, usize, usize),
    /// Physical extent (uniform spacing within the box — the real
    /// curvilinear metric does not change the cost structure).
    pub bbox: Bbox,
}

impl Block {
    /// Grid points in the block.
    pub fn points(&self) -> u64 {
        let (ni, nj, nk) = self.dims;
        ni as u64 * nj as u64 * nk as u64
    }

    /// Fringe (outer-boundary) points needing donor interpolation: the
    /// outermost two layers, as in a double-fringe overset scheme.
    pub fn fringe_points(&self) -> u64 {
        let (ni, nj, nk) = self.dims;
        let interior = |n: usize| n.saturating_sub(4) as u64;
        self.points() - interior(ni) * interior(nj) * interior(nk)
    }

    /// Grid spacing along each axis.
    pub fn spacing(&self) -> [f64; 3] {
        let (ni, nj, nk) = self.dims;
        let d = [ni, nj, nk];
        let mut h = [0.0; 3];
        for a in 0..3 {
            h[a] = (self.bbox.max[a] - self.bbox.min[a]) / (d[a].max(2) - 1) as f64;
        }
        h
    }

    /// Physical coordinates of grid point (i, j, k).
    pub fn point(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        let h = self.spacing();
        [
            self.bbox.min[0] + h[0] * i as f64,
            self.bbox.min[1] + h[1] * j as f64,
            self.bbox.min[2] + h[2] * k as f64,
        ]
    }
}

/// A complete overset grid system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSystem {
    /// All blocks.
    pub blocks: Vec<Block>,
}

impl GridSystem {
    /// Total grid points.
    pub fn total_points(&self) -> u64 {
        self.blocks.iter().map(Block::points).sum()
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the system has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Pairs of blocks whose bounding boxes overlap — the candidate
    /// connectivity set.
    pub fn overlapping_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for i in 0..self.blocks.len() {
            for j in i + 1..self.blocks.len() {
                if self.blocks[i].bbox.overlaps(&self.blocks[j].bbox) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: usize, min: [f64; 3], max: [f64; 3], dims: (usize, usize, usize)) -> Block {
        Block {
            id,
            dims,
            bbox: Bbox { min, max },
        }
    }

    #[test]
    fn bbox_overlap_and_containment() {
        let a = Bbox {
            min: [0.0; 3],
            max: [1.0; 3],
        };
        let b = Bbox {
            min: [0.5, 0.5, 0.5],
            max: [2.0; 3],
        };
        let c = Bbox {
            min: [1.5, 0.0, 0.0],
            max: [2.0, 1.0, 1.0],
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.contains([0.5, 0.5, 0.5]));
        assert!(!a.contains([1.5, 0.5, 0.5]));
    }

    #[test]
    fn fringe_is_a_thin_shell() {
        let b = block(0, [0.0; 3], [1.0; 3], (20, 20, 20));
        let fringe = b.fringe_points();
        assert_eq!(fringe, 8000 - 16 * 16 * 16);
        assert!(fringe < b.points() / 2);
    }

    #[test]
    fn point_coordinates_span_the_bbox() {
        let b = block(0, [1.0, 2.0, 3.0], [2.0, 4.0, 6.0], (11, 11, 11));
        assert_eq!(b.point(0, 0, 0), [1.0, 2.0, 3.0]);
        let far = b.point(10, 10, 10);
        assert!((far[0] - 2.0).abs() < 1e-12);
        assert!((far[1] - 4.0).abs() < 1e-12);
        assert!((far[2] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_pairs_found() {
        let sys = GridSystem {
            blocks: vec![
                block(0, [0.0; 3], [1.0; 3], (8, 8, 8)),
                block(1, [0.9, 0.0, 0.0], [1.9, 1.0, 1.0], (8, 8, 8)),
                block(2, [5.0; 3], [6.0; 3], (8, 8, 8)),
            ],
        };
        assert_eq!(sys.overlapping_pairs(), vec![(0, 1)]);
        assert_eq!(sys.total_points(), 3 * 512);
    }
}
