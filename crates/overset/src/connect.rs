//! Inter-grid connectivity: donor search and trilinear interpolation.
//!
//! A fringe point of one block takes its value from the *donor cell*
//! of an overlapping block by trilinear interpolation — "connectivity
//! between neighboring grids is established by interpolation at the
//! grid outer boundaries" (§3.4). Adding a component only requires new
//! connectivity, never regridding, which is the property that lets
//! OVERFLOW-D move bodies in relative motion.

use crate::block::Block;

/// An interpolation stencil: donor block, base cell, and the eight
/// trilinear weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DonorStencil {
    /// Donor block id.
    pub donor: usize,
    /// Lower corner cell index in the donor grid.
    pub cell: (usize, usize, usize),
    /// Trilinear weights in (i, j, k) bit order: index `b` weights the
    /// corner offset `(b&1, (b>>1)&1, (b>>2)&1)`.
    pub weights: [f64; 8],
}

impl DonorStencil {
    /// Interpolate a field sampled on the donor grid by `f(i, j, k)`.
    pub fn interpolate(&self, f: impl Fn(usize, usize, usize) -> f64) -> f64 {
        let (ci, cj, ck) = self.cell;
        let mut v = 0.0;
        for b in 0..8 {
            let (di, dj, dk) = (b & 1, (b >> 1) & 1, (b >> 2) & 1);
            v += self.weights[b] * f(ci + di, cj + dj, ck + dk);
        }
        v
    }

    /// Weights must form a partition of unity.
    pub fn weight_sum(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// Locate the donor stencil for physical point `p` in `donor`; `None`
/// when `p` lies outside the donor's box.
pub fn find_donor(donor: &Block, p: [f64; 3]) -> Option<DonorStencil> {
    if !donor.bbox.contains(p) {
        return None;
    }
    let h = donor.spacing();
    let dims = [donor.dims.0, donor.dims.1, donor.dims.2];
    let mut cell = [0usize; 3];
    let mut frac = [0.0f64; 3];
    for a in 0..3 {
        let x = (p[a] - donor.bbox.min[a]) / h[a];
        let c = (x.floor() as usize).min(dims[a] - 2);
        cell[a] = c;
        frac[a] = (x - c as f64).clamp(0.0, 1.0);
    }
    let mut weights = [0.0; 8];
    for (b, w) in weights.iter_mut().enumerate() {
        let mut wt = 1.0;
        for (a, &f) in frac.iter().enumerate() {
            let bit = (b >> a) & 1;
            wt *= if bit == 1 { f } else { 1.0 - f };
        }
        *w = wt;
    }
    Some(DonorStencil {
        donor: donor.id,
        cell: (cell[0], cell[1], cell[2]),
        weights,
    })
}

/// Count the fringe points of `receiver` that find donors in `donor`
/// (sampled on the receiver's outer faces) and the implied exchange
/// volume in bytes for `nvars` variables.
pub fn exchange_volume(receiver: &Block, donor: &Block, nvars: usize) -> u64 {
    if !receiver.bbox.overlaps(&donor.bbox) {
        return 0;
    }
    let (ni, nj, nk) = receiver.dims;
    let mut found = 0u64;
    // Sample the six outer faces.
    let mut visit = |i: usize, j: usize, k: usize| {
        if find_donor(donor, receiver.point(i, j, k)).is_some() {
            found += 1;
        }
    };
    for j in 0..nj {
        for k in 0..nk {
            visit(0, j, k);
            visit(ni - 1, j, k);
        }
    }
    for i in 1..ni - 1 {
        for k in 0..nk {
            visit(i, 0, k);
            visit(i, nj - 1, k);
        }
    }
    for i in 1..ni - 1 {
        for j in 1..nj - 1 {
            visit(i, j, 0);
            visit(i, j, nk - 1);
        }
    }
    found * nvars as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Bbox;

    fn unit_block(id: usize, min: [f64; 3], max: [f64; 3], n: usize) -> Block {
        Block {
            id,
            dims: (n, n, n),
            bbox: Bbox { min, max },
        }
    }

    #[test]
    fn weights_partition_unity() {
        let donor = unit_block(3, [0.0; 3], [1.0; 3], 11);
        for p in [[0.25, 0.5, 0.75], [0.01, 0.99, 0.5], [1.0, 1.0, 1.0]] {
            let s = find_donor(&donor, p).unwrap();
            assert!((s.weight_sum() - 1.0).abs() < 1e-12);
            assert_eq!(s.donor, 3);
        }
    }

    #[test]
    fn outside_point_has_no_donor() {
        let donor = unit_block(0, [0.0; 3], [1.0; 3], 11);
        assert!(find_donor(&donor, [1.5, 0.5, 0.5]).is_none());
    }

    #[test]
    fn interpolation_is_exact_for_linear_fields() {
        // Trilinear interpolation reproduces a + bx + cy + dz exactly.
        let donor = unit_block(0, [0.0; 3], [1.0; 3], 21);
        let h = donor.spacing();
        let field = |i: usize, j: usize, k: usize| {
            let x = i as f64 * h[0];
            let y = j as f64 * h[1];
            let z = k as f64 * h[2];
            1.0 + 2.0 * x - 3.0 * y + 0.5 * z
        };
        for p in [[0.33, 0.67, 0.12], [0.501, 0.499, 0.011]] {
            let s = find_donor(&donor, p).unwrap();
            let got = s.interpolate(field);
            let want = 1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2];
            assert!((got - want).abs() < 1e-10, "at {p:?}: {got} vs {want}");
        }
    }

    #[test]
    fn grid_point_lands_on_exact_value() {
        let donor = unit_block(0, [0.0; 3], [1.0; 3], 11);
        let p = donor.point(3, 7, 5);
        let s = find_donor(&donor, p).unwrap();
        let field = |i: usize, j: usize, k: usize| (i * 100 + j * 10 + k) as f64;
        assert!((s.interpolate(field) - 375.0).abs() < 1e-9);
    }

    #[test]
    fn exchange_volume_zero_without_overlap() {
        let a = unit_block(0, [0.0; 3], [1.0; 3], 8);
        let b = unit_block(1, [5.0; 3], [6.0; 3], 8);
        assert_eq!(exchange_volume(&a, &b, 5), 0);
    }

    #[test]
    fn exchange_volume_counts_overlapping_fringe() {
        let a = unit_block(0, [0.0; 3], [1.0; 3], 8);
        let b = unit_block(1, [0.5, 0.0, 0.0], [1.5, 1.0, 1.0], 8);
        let v = exchange_volume(&a, &b, 5);
        assert!(v > 0);
        // At most the whole outer surface of `a`.
        let surface = 8u64 * 8 * 8 - 6 * 6 * 6;
        assert!(v <= surface * 5 * 8);
    }
}
