//! Overset (Chimera) grid substrate shared by INS3D and OVERFLOW-D.
//!
//! Both production codes decompose their complex geometry into many
//! simple curvilinear grid components ("blocks" or "zones") that
//! overlap; connectivity between neighbouring grids is established by
//! interpolation at the outer boundaries (§3.4), and parallelism comes
//! from grouping grids onto processes with a bin-packing algorithm
//! that first checks for overlap (§3.5).
//!
//! * [`block`] — grid blocks with bounding boxes and point counts;
//! * [`connect`] — overlap detection, donor search, and trilinear
//!   interpolation weights for fringe points;
//! * [`group`] — the connectivity-aware bin-packing grouper;
//! * [`systems`] — deterministic generators for the two grid systems
//!   the paper uses: the 267-block / 66-million-point turbopump
//!   (INS3D) and the 1,679-block / 75-million-point rotor-wake system
//!   (OVERFLOW-D), plus arbitrary scaled-down versions for host runs.

pub mod block;
pub mod connect;
pub mod group;
pub mod systems;

pub use block::{Block, GridSystem};
pub use group::{group_blocks, Grouping};
