//! Property-based tests over zone decomposition and load balancing.

use columbia_npbmz::balance::{bin_pack, round_robin};
use columbia_npbmz::zones::{even_zones, uneven_zones, MzClass, Zone};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = MzClass> {
    prop::sample::select(vec![
        MzClass::S,
        MzClass::W,
        MzClass::A,
        MzClass::B,
        MzClass::C,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn decompositions_always_cover_the_mesh(class in any_class()) {
        for zones in [even_zones(class), uneven_zones(class)] {
            let pts: u64 = zones.iter().map(Zone::points).sum();
            prop_assert_eq!(pts, class.total_points());
            prop_assert_eq!(zones.len(), class.zone_count());
            prop_assert!(zones.iter().all(|z| z.ni >= 1 && z.nj >= 1 && z.nk >= 1));
        }
    }

    #[test]
    fn bin_pack_assigns_everything_once(
        class in any_class(),
        ranks_frac in 0.05f64..1.0,
    ) {
        let zones = uneven_zones(class);
        let ranks = ((zones.len() as f64 * ranks_frac) as usize).max(1);
        let a = bin_pack(&zones, ranks);
        let mut seen = vec![false; zones.len()];
        let mut load_check = vec![0u64; ranks];
        for (g, ids) in a.zone_ids.iter().enumerate() {
            for &id in ids {
                prop_assert!(!seen[id]);
                seen[id] = true;
                load_check[g] += zones[id].points();
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(&load_check, &a.load);
        prop_assert!(a.imbalance() >= 1.0 - 1e-12);
    }

    #[test]
    fn bin_pack_never_loses_to_round_robin(
        class in any_class(),
        ranks in 2usize..16,
    ) {
        let zones = uneven_zones(class);
        prop_assume!(zones.len() >= ranks);
        let bp = bin_pack(&zones, ranks);
        let rr = round_robin(&zones, ranks);
        prop_assert!(bp.imbalance() <= rr.imbalance() + 1e-9);
    }
}
