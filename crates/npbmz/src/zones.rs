//! Zone decomposition tables for the multi-zone benchmarks.
//!
//! Each class fixes a 2-D grid of zones over an aggregate mesh. SP-MZ
//! splits the mesh evenly; BT-MZ applies a geometric progression in
//! the x-direction so the largest zone is ~20× the smallest — the
//! load-balance stressor.

use serde::{Deserialize, Serialize};

/// Multi-zone problem classes, including the two the paper introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MzClass {
    /// Sample.
    S,
    /// Workstation.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
    /// Class C (Figs. 7 and 9).
    C,
    /// Class D.
    D,
    /// Class E — 4,096 zones, 4224×3456×92 aggregate (§3.2; Fig. 11).
    E,
    /// Class F — 16,384 zones, 12032×8960×250 aggregate (§3.2).
    F,
}

impl MzClass {
    /// All classes smallest-first.
    pub const ALL: [MzClass; 8] = [
        MzClass::S,
        MzClass::W,
        MzClass::A,
        MzClass::B,
        MzClass::C,
        MzClass::D,
        MzClass::E,
        MzClass::F,
    ];

    /// Zone grid (x_zones, y_zones) and aggregate mesh (gx, gy, gz).
    pub fn layout(self) -> ((usize, usize), (usize, usize, usize)) {
        match self {
            MzClass::S => ((2, 2), (24, 24, 6)),
            MzClass::W => ((4, 4), (64, 64, 8)),
            MzClass::A => ((4, 4), (128, 128, 16)),
            MzClass::B => ((8, 8), (304, 208, 17)),
            MzClass::C => ((16, 16), (480, 320, 28)),
            MzClass::D => ((32, 32), (1632, 1216, 34)),
            MzClass::E => ((64, 64), (4224, 3456, 92)),
            MzClass::F => ((128, 128), (12032, 8960, 250)),
        }
    }

    /// Total zone count.
    pub fn zone_count(self) -> usize {
        let ((zx, zy), _) = self.layout();
        zx * zy
    }

    /// Aggregate grid points.
    pub fn total_points(self) -> u64 {
        let (_, (gx, gy, gz)) = self.layout();
        gx as u64 * gy as u64 * gz as u64
    }

    /// Benchmark time steps (shortened classes run the same loop).
    pub fn iterations(self) -> u32 {
        match self {
            MzClass::S | MzClass::W => 50,
            _ => 200,
        }
    }

    /// Class letter.
    pub fn name(self) -> &'static str {
        match self {
            MzClass::S => "S",
            MzClass::W => "W",
            MzClass::A => "A",
            MzClass::B => "B",
            MzClass::C => "C",
            MzClass::D => "D",
            MzClass::E => "E",
            MzClass::F => "F",
        }
    }
}

impl std::fmt::Display for MzClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One zone of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Zone index in row-major (x, y) order.
    pub id: usize,
    /// Dimensions.
    pub ni: usize,
    /// Dimensions.
    pub nj: usize,
    /// Dimensions.
    pub nk: usize,
}

impl Zone {
    /// Grid points in the zone.
    pub fn points(&self) -> u64 {
        self.ni as u64 * self.nj as u64 * self.nk as u64
    }

    /// Boundary-face bytes exchanged with one x/y neighbour per step
    /// (5 variables, double precision, one ghost layer).
    pub fn face_bytes_x(&self) -> u64 {
        (self.nj * self.nk * 5 * 8) as u64
    }

    /// Boundary bytes toward a y-neighbour.
    pub fn face_bytes_y(&self) -> u64 {
        (self.ni * self.nk * 5 * 8) as u64
    }
}

/// Ratio between the largest and smallest BT-MZ zone (the NPB-MZ spec
/// targets ~20).
pub const BTMZ_SIZE_RATIO: f64 = 20.0;

/// Even (SP-MZ) zone decomposition.
pub fn even_zones(class: MzClass) -> Vec<Zone> {
    let ((zx, zy), (gx, gy, gz)) = class.layout();
    let mut zones = Vec::with_capacity(zx * zy);
    for y in 0..zy {
        for x in 0..zx {
            zones.push(Zone {
                id: y * zx + x,
                ni: split_even(gx, zx, x),
                nj: split_even(gy, zy, y),
                nk: gz,
            });
        }
    }
    zones
}

/// Uneven (BT-MZ) decomposition: geometric x-widths spanning the
/// [`BTMZ_SIZE_RATIO`] spread, even in y.
pub fn uneven_zones(class: MzClass) -> Vec<Zone> {
    let ((zx, zy), (gx, gy, gz)) = class.layout();
    // widths[i] ∝ r^i with r^(zx−1) = RATIO.
    let r = if zx > 1 {
        BTMZ_SIZE_RATIO.powf(1.0 / (zx as f64 - 1.0))
    } else {
        1.0
    };
    let weights: Vec<f64> = (0..zx).map(|i| r.powi(i as i32)).collect();
    let wsum: f64 = weights.iter().sum();
    // Integer widths that sum exactly to gx.
    let mut widths: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * gx as f64).floor().max(1.0) as usize)
        .collect();
    let mut deficit = gx as i64 - widths.iter().sum::<usize>() as i64;
    let mut i = zx - 1;
    while deficit != 0 {
        if deficit > 0 {
            widths[i] += 1;
            deficit -= 1;
        } else if widths[i] > 1 {
            widths[i] -= 1;
            deficit += 1;
        }
        i = if i == 0 { zx - 1 } else { i - 1 };
    }
    let mut zones = Vec::with_capacity(zx * zy);
    for y in 0..zy {
        for (x, &ni) in widths.iter().enumerate() {
            zones.push(Zone {
                id: y * zx + x,
                ni,
                nj: split_even(gy, zy, y),
                nk: gz,
            });
        }
    }
    zones
}

fn split_even(total: usize, parts: usize, idx: usize) -> usize {
    let base = total / parts;
    if idx < total % parts {
        base + 1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_e_matches_paper() {
        // §3.2: "Class E (4096 zones, 4224×3456×92 aggregated grid
        // size)" — 1.3 billion points (§4.6.2).
        assert_eq!(MzClass::E.zone_count(), 4096);
        assert_eq!(MzClass::E.total_points(), 4224 * 3456 * 92);
        assert!(MzClass::E.total_points() > 1_300_000_000);
    }

    #[test]
    fn class_f_matches_paper() {
        assert_eq!(MzClass::F.zone_count(), 16384);
        assert_eq!(MzClass::F.total_points(), 12032 * 8960 * 250);
    }

    #[test]
    fn even_zones_cover_the_mesh_exactly() {
        for class in [MzClass::S, MzClass::C, MzClass::E] {
            let zones = even_zones(class);
            let pts: u64 = zones.iter().map(Zone::points).sum();
            assert_eq!(pts, class.total_points(), "{class}");
            assert_eq!(zones.len(), class.zone_count());
        }
    }

    #[test]
    fn even_zones_are_nearly_equal() {
        let zones = even_zones(MzClass::C);
        let min = zones.iter().map(Zone::points).min().unwrap();
        let max = zones.iter().map(Zone::points).max().unwrap();
        let spread = max as f64 / min as f64;
        assert!(spread < 1.15, "min={min} max={max}");
    }

    #[test]
    fn uneven_zones_cover_the_mesh_exactly() {
        for class in [MzClass::S, MzClass::C, MzClass::E] {
            let zones = uneven_zones(class);
            let pts: u64 = zones.iter().map(Zone::points).sum();
            assert_eq!(pts, class.total_points(), "{class}");
        }
    }

    #[test]
    fn uneven_spread_is_about_20x() {
        let zones = uneven_zones(MzClass::C);
        let min = zones.iter().map(Zone::points).min().unwrap();
        let max = zones.iter().map(Zone::points).max().unwrap();
        let ratio = max as f64 / min as f64;
        assert!((10.0..30.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn face_bytes_positive_and_directional() {
        let z = Zone {
            id: 0,
            ni: 10,
            nj: 20,
            nk: 5,
        };
        assert_eq!(z.face_bytes_x(), 20 * 5 * 40);
        assert_eq!(z.face_bytes_y(), 10 * 5 * 40);
    }
}
