//! The multi-zone NAS Parallel Benchmarks (§3.2, §4.3, §4.5, §4.6.2).
//!
//! NPB-MZ partitions the flow domain into many zones that are solved
//! independently each step and then exchange boundary values — the
//! same structure as the overset-grid production codes. BT-MZ sizes
//! its zones *unevenly* (stressing load balance), SP-MZ evenly. The
//! paper introduces two new classes to stress Columbia: E (4,096
//! zones, 1.3 billion aggregate points) and F (16,384 zones).
//!
//! * [`zones`] — zone grids and dimensions per class, even and uneven;
//! * [`balance`] — the greedy bin-packing balancer (and a round-robin
//!   baseline for the ablation bench) assigning zones to MPI ranks;
//! * [`mod@bench`] — hybrid MPI+OpenMP workload specs, the real class-S
//!   mini-run, and the figure runners (Fig. 7 pinning, Fig. 9
//!   process/thread trade, Fig. 11 multinode fabrics).

pub mod balance;
pub mod bench;
pub mod zones;

pub use bench::{MzBenchmark, MzRunConfig};
pub use zones::{MzClass, Zone};
