//! Zone-to-rank load balancing.
//!
//! The hybrid NPB-MZ (like OVERFLOW-D's grouping, §3.5) assigns zones
//! to MPI processes with a bin-packing heuristic: zones sorted largest
//! first, each placed on the currently lightest rank. The quality of
//! the resulting balance is what decides BT-MZ scalability at high
//! rank counts (Fig. 9) and the SP-MZ dips at non-divisor counts
//! (Fig. 11).

use crate::zones::Zone;

/// Assignment of zones to ranks.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `zone_ids[rank]` lists the zones owned by that rank.
    pub zone_ids: Vec<Vec<usize>>,
    /// Grid points per rank.
    pub load: Vec<u64>,
}

impl Assignment {
    /// Max-to-mean load imbalance (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = *self.load.iter().max().unwrap_or(&0) as f64;
        let mean = self.load.iter().sum::<u64>() as f64 / self.load.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// The heaviest rank's point count.
    pub fn max_load(&self) -> u64 {
        *self.load.iter().max().unwrap_or(&0)
    }
}

/// Greedy bin-packing: largest zone first onto the lightest rank.
pub fn bin_pack(zones: &[Zone], ranks: usize) -> Assignment {
    assert!(ranks >= 1);
    assert!(
        zones.len() >= ranks,
        "cannot give every rank work: {} zones < {ranks} ranks",
        zones.len()
    );
    let mut order: Vec<&Zone> = zones.iter().collect();
    order.sort_by_key(|z| std::cmp::Reverse(z.points()));
    let mut zone_ids = vec![Vec::new(); ranks];
    let mut load = vec![0u64; ranks];
    for z in order {
        let lightest = (0..ranks).min_by_key(|&r| load[r]).unwrap();
        zone_ids[lightest].push(z.id);
        load[lightest] += z.points();
    }
    Assignment { zone_ids, load }
}

/// Round-robin baseline (the ablation bench compares against it).
pub fn round_robin(zones: &[Zone], ranks: usize) -> Assignment {
    assert!(ranks >= 1);
    assert!(zones.len() >= ranks);
    let mut zone_ids = vec![Vec::new(); ranks];
    let mut load = vec![0u64; ranks];
    for (i, z) in zones.iter().enumerate() {
        zone_ids[i % ranks].push(z.id);
        load[i % ranks] += z.points();
    }
    Assignment { zone_ids, load }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zones::{even_zones, uneven_zones, MzClass};

    #[test]
    fn every_zone_assigned_exactly_once() {
        let zones = uneven_zones(MzClass::C);
        let a = bin_pack(&zones, 37);
        let mut seen = vec![false; zones.len()];
        for ids in &a.zone_ids {
            for &id in ids {
                assert!(!seen[id], "zone {id} assigned twice");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn even_zones_balance_perfectly_at_divisors() {
        let zones = even_zones(MzClass::E); // 4096 zones
        for ranks in [256, 512, 1024] {
            let a = bin_pack(&zones, ranks);
            assert!(a.imbalance() < 1.02, "ranks={ranks}: {}", a.imbalance());
        }
    }

    #[test]
    fn even_zones_dip_at_non_divisors() {
        // Fig. 11: "The performance drop for SP-MZ at 768 and 1536
        // processors can be explained by load imbalance."
        let zones = even_zones(MzClass::E);
        let a = bin_pack(&zones, 768);
        // 4096/768 = 5.33 zones per rank → some ranks carry 6.
        assert!(a.imbalance() > 1.08, "imbalance={}", a.imbalance());
    }

    #[test]
    fn bin_packing_beats_round_robin_on_uneven_zones() {
        let zones = uneven_zones(MzClass::C);
        let bp = bin_pack(&zones, 64);
        let rr = round_robin(&zones, 64);
        assert!(
            bp.imbalance() < rr.imbalance(),
            "bin-pack {} vs round-robin {}",
            bp.imbalance(),
            rr.imbalance()
        );
    }

    #[test]
    fn one_zone_per_rank_exposes_the_spread() {
        // With 256 ranks for 256 uneven zones nothing can balance —
        // the mechanism behind BT-MZ needing OpenMP threads at scale.
        let zones = uneven_zones(MzClass::C);
        let a = bin_pack(&zones, zones.len());
        assert!(a.imbalance() > 2.0, "imbalance={}", a.imbalance());
        // Fewer ranks balance much better.
        let b = bin_pack(&zones, 64);
        assert!(b.imbalance() < 1.2, "imbalance={}", b.imbalance());
    }

    #[test]
    #[should_panic(expected = "cannot give every rank work")]
    fn more_ranks_than_zones_rejected() {
        let zones = even_zones(MzClass::S);
        let _ = bin_pack(&zones, 5);
    }
}
