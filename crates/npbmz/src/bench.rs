//! Hybrid MPI+OpenMP execution of BT-MZ and SP-MZ.
//!
//! Zones go to MPI ranks via bin-packing; each rank advances its zones
//! (OpenMP threads inside), then exchanges zone boundaries. The
//! figure runners parameterize this over process/thread combinations
//! (Fig. 9), pinning (Fig. 7), and fabrics/nodes (Fig. 11).

use columbia_kernels::grid::Grid3;
use columbia_kernels::lusgs::{lusgs_iteration, model_residual, LuSgsCoeffs};
use columbia_machine::cluster::{ClusterConfig, InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_npb::mg::push_halo;
use columbia_runtime::compiler::{CompilerVersion, KernelClass};
use columbia_runtime::compute::WorkPhase;
use columbia_runtime::exec::{execute, ExecConfig, SpecOp, WorkloadSpec};
use columbia_runtime::pinning::Pinning;
use columbia_runtime::placement::{Placement, PlacementStrategy};
use columbia_simnet::fabric::MptVersion;
use columbia_simnet::{FaultPlan, FaultStats, SimError};

use crate::balance::{bin_pack, Assignment};
use crate::zones::{even_zones, uneven_zones, MzClass, Zone};

/// The two multi-zone benchmarks the paper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MzBenchmark {
    /// Uneven zones — load-balance stressor.
    BtMz,
    /// Even zones — trivially balanced at divisor rank counts.
    SpMz,
}

impl MzBenchmark {
    /// Zone decomposition for a class.
    pub fn zones(self, class: MzClass) -> Vec<Zone> {
        match self {
            MzBenchmark::BtMz => uneven_zones(class),
            MzBenchmark::SpMz => even_zones(class),
        }
    }

    /// Flops per grid point per step (published NPB operation counts;
    /// SP's scalar pentadiagonal solves are cheaper than BT's 5×5
    /// blocks).
    pub fn flops_per_point(self) -> f64 {
        match self {
            MzBenchmark::BtMz => 3200.0,
            MzBenchmark::SpMz => 1400.0,
        }
    }

    /// Memory traffic per point per step, bytes.
    pub fn bytes_per_point(self) -> f64 {
        match self {
            MzBenchmark::BtMz => 2600.0,
            MzBenchmark::SpMz => 1100.0,
        }
    }

    /// Resident bytes per point.
    pub fn resident_bytes_per_point(self) -> f64 {
        match self {
            MzBenchmark::BtMz => 500.0,
            MzBenchmark::SpMz => 320.0,
        }
    }

    /// Name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            MzBenchmark::BtMz => "BT-MZ",
            MzBenchmark::SpMz => "SP-MZ",
        }
    }
}

impl std::fmt::Display for MzBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One hybrid run configuration.
#[derive(Debug, Clone)]
pub struct MzRunConfig {
    /// Benchmark.
    pub bench: MzBenchmark,
    /// Class.
    pub class: MzClass,
    /// MPI processes.
    pub procs: usize,
    /// OpenMP threads per process.
    pub threads: usize,
    /// Node flavour.
    pub kind: NodeKind,
    /// Nodes spanned (1 = in-node).
    pub nodes: u32,
    /// Inter-node fabric for multi-node runs.
    pub inter: InterNodeFabric,
    /// MPT library version.
    pub mpt: MptVersion,
    /// Pinning discipline.
    pub pinning: Pinning,
    /// Faults active during the run ([`FaultPlan::none`] = healthy).
    pub faults: FaultPlan,
}

impl MzRunConfig {
    /// Pinned, in-node BX2b defaults.
    pub fn new(bench: MzBenchmark, class: MzClass, procs: usize, threads: usize) -> Self {
        MzRunConfig {
            bench,
            class,
            procs,
            threads,
            kind: NodeKind::Bx2b,
            nodes: 1,
            inter: InterNodeFabric::NumaLink4,
            mpt: MptVersion::Beta,
            pinning: Pinning::Pinned,
            faults: FaultPlan::none(),
        }
    }

    /// Total CPUs.
    pub fn total_cpus(&self) -> usize {
        self.procs * self.threads
    }
}

/// Steps actually simulated (rates are per-step).
const SIM_STEPS: u32 = 2;

/// Outcome of one simulated hybrid run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MzOutcome {
    /// Wall-clock seconds per step.
    pub seconds_per_step: f64,
    /// Aggregate Gflop/s over all CPUs.
    pub total_gflops: f64,
    /// Per-CPU Gflop/s (Fig. 11's top row metric).
    pub gflops_per_cpu: f64,
    /// Zone-to-rank load imbalance of the run.
    pub imbalance: f64,
    /// Fault activity observed during the run (all zeros when healthy).
    pub faults: FaultStats,
}

/// Build the per-rank workload spec for one configuration.
pub fn build_spec(cfg: &MzRunConfig) -> (WorkloadSpec, Assignment) {
    let zones = cfg.bench.zones(cfg.class);
    let assign = bin_pack(&zones, cfg.procs);
    let mut spec = WorkloadSpec::with_ranks(cfg.procs);
    let fpp = cfg.bench.flops_per_point();
    let bpp = cfg.bench.bytes_per_point();
    let rpp = cfg.bench.resident_bytes_per_point();
    for step in 0..SIM_STEPS {
        for (r, ops) in spec.ranks.iter_mut().enumerate() {
            let pts = assign.load[r] as f64;
            let phase = WorkPhase::new(
                pts * fpp,
                pts * bpp,
                (pts * rpp / cfg.threads.max(1) as f64) as u64,
                0.25,
                KernelClass::BlockSolver,
            )
            .with_serial_fraction(0.03)
            .with_remote_share(0.6);
            ops.push(SpecOp::Work(phase));
            // Boundary exchange: each rank's aggregate zone faces go to
            // its ring neighbours (zone adjacency aggregated per rank).
            let boundary: u64 = assign.zone_ids[r]
                .iter()
                .map(|&id| zones[id].face_bytes_x() + zones[id].face_bytes_y())
                .sum();
            push_halo(
                ops,
                r,
                cfg.procs,
                1,
                (boundary / 2).max(64),
                step as u64 * 10,
            );
            ops.push(SpecOp::Barrier);
        }
    }
    (spec, assign)
}

/// Execute one configuration on the simulator, or surface the run's
/// typed [`SimError`] diagnosis.
pub fn run(cfg: &MzRunConfig) -> Result<MzOutcome, SimError> {
    let cluster = ClusterConfig::uniform(cfg.kind, cfg.nodes);
    let nodes: Vec<NodeId> = (0..cfg.nodes).map(NodeId).collect();
    let placement = Placement::new(
        &cluster,
        &nodes,
        cfg.procs,
        cfg.threads,
        PlacementStrategy::Dense,
    );
    let (spec, assign) = build_spec(cfg);
    let exec_cfg = ExecConfig {
        cluster,
        nodes,
        inter: cfg.inter,
        mpt: cfg.mpt,
        placement,
        compiler: CompilerVersion::V7_1,
        pinning: cfg.pinning,
        faults: cfg.faults.clone(),
    };
    let out = execute(&spec, &exec_cfg)?;
    // The §4.6.2 released-MPT InfiniBand anomaly. The paper could not
    // explain it mechanistically ("we are actively working with SGI
    // engineers to find the true cause"), so we carry it as an
    // empirical multiplier: 40% at 256 CPUs, decaying as CPU count
    // grows, absent with the beta library or on NUMAlink4.
    let anomaly = if cfg.bench == MzBenchmark::SpMz
        && cfg.nodes > 1
        && cfg.inter == InterNodeFabric::InfiniBand
        && cfg.mpt == MptVersion::Released
    {
        1.0 + 0.40 * (256.0 / (cfg.total_cpus() as f64).max(256.0))
    } else {
        1.0
    };
    let seconds_per_step = out.makespan * anomaly / SIM_STEPS as f64;
    let total_flops_per_step = cfg.class.total_points() as f64 * cfg.bench.flops_per_point();
    let total_gflops = total_flops_per_step / seconds_per_step / 1.0e9;
    Ok(MzOutcome {
        seconds_per_step,
        total_gflops,
        gflops_per_cpu: total_gflops / cfg.total_cpus() as f64,
        imbalance: assign.imbalance(),
        faults: out.faults,
    })
}

/// Result of the real class-S multi-zone mini-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MzRealResult {
    /// Residual before stepping.
    pub initial_residual: f64,
    /// Residual after the steps.
    pub final_residual: f64,
    /// Largest boundary mismatch between adjacent zones after the
    /// final exchange.
    pub boundary_mismatch: f64,
}

impl MzRealResult {
    /// Verification: converging zones with consistent boundaries.
    ///
    /// The Schwarz-style boundary averaging trades per-zone convergence
    /// speed for inter-zone consistency, so the residual contracts
    /// steadily rather than geometrically.
    pub fn verified(&self) -> bool {
        self.final_residual < self.initial_residual * 0.5 && self.boundary_mismatch < 1e-12
    }
}

/// A real miniature multi-zone solve: each class-S zone relaxes a
/// diffusion operator, exchanging one-cell boundary strips with its
/// x-neighbours every step (the multi-zone structure for real).
pub fn run_real(bench: MzBenchmark) -> MzRealResult {
    let class = MzClass::S;
    let zones = bench.zones(class);
    let ((zx, _), _) = class.layout();
    let coeffs = LuSgsCoeffs {
        diag: 7.0,
        off: 1.0,
    };
    let mut fields: Vec<Grid3> = zones
        .iter()
        .map(|z| Grid3::zeros(z.ni, z.nj, z.nk))
        .collect();
    let rhss: Vec<Grid3> = zones
        .iter()
        .map(|z| {
            Grid3::from_fn(z.ni, z.nj, z.nk, |i, j, k| {
                ((i * 3 + j * 5 + k * 7 + z.id) % 11) as f64 - 5.0
            })
        })
        .collect();
    let initial: f64 = fields
        .iter()
        .zip(&rhss)
        .map(|(f, r)| model_residual(f, r, coeffs))
        .sum();
    let steps = 40;
    for _ in 0..steps {
        for (f, r) in fields.iter_mut().zip(&rhss) {
            lusgs_iteration(f, r, coeffs);
        }
        // Exchange x-boundaries: copy the neighbour's edge plane into
        // our ghost-adjacent plane (averaged, symmetric).
        for y_row in 0..zones.len() / zx {
            for x in 0..zx - 1 {
                let left = y_row * zx + x;
                let right = left + 1;
                let (zl, zr) = (zones[left], zones[right]);
                let nj = zl.nj.min(zr.nj);
                let nk = zl.nk.min(zr.nk);
                for j in 0..nj {
                    for k in 0..nk {
                        let a = fields[left].get(zl.ni - 1, j, k);
                        let b = fields[right].get(0, j, k);
                        let avg = 0.5 * (a + b);
                        fields[left].set(zl.ni - 1, j, k, avg);
                        fields[right].set(0, j, k, avg);
                    }
                }
            }
        }
    }
    let final_r: f64 = fields
        .iter()
        .zip(&rhss)
        .map(|(f, r)| model_residual(f, r, coeffs))
        .sum();
    // Boundary consistency after the final exchange.
    let mut mismatch = 0.0f64;
    for y_row in 0..zones.len() / zx {
        for x in 0..zx - 1 {
            let left = y_row * zx + x;
            let right = left + 1;
            let (zl, zr) = (zones[left], zones[right]);
            for j in 0..zl.nj.min(zr.nj) {
                for k in 0..zl.nk.min(zr.nk) {
                    mismatch = mismatch.max(
                        (fields[left].get(zl.ni - 1, j, k) - fields[right].get(0, j, k)).abs(),
                    );
                }
            }
        }
    }
    MzRealResult {
        initial_residual: initial,
        final_residual: final_r,
        boundary_mismatch: mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy-machine shorthand: these figure sweeps must never fail.
    fn run(cfg: &MzRunConfig) -> MzOutcome {
        super::run(cfg).unwrap()
    }

    #[test]
    fn real_mini_runs_verify() {
        for bench in [MzBenchmark::BtMz, MzBenchmark::SpMz] {
            let r = run_real(bench);
            assert!(r.verified(), "{bench}: {r:?}");
        }
    }

    #[test]
    fn mpi_scales_at_fixed_threads() {
        // Fig. 9, left panel: "for a given number of OpenMP threads,
        // MPI scales very well, almost linearly up to the point where
        // load imbalancing becomes a problem."
        let g =
            |procs| run(&MzRunConfig::new(MzBenchmark::BtMz, MzClass::C, procs, 1)).total_gflops;
        let g16 = g(16);
        let g64 = g(64);
        assert!(g64 > 3.0 * g16, "g16={g16} g64={g64}");
    }

    #[test]
    fn openmp_scaling_is_limited() {
        // Fig. 9, right panel: "OpenMP performance drops quickly as the
        // number of threads increases" (beyond 2).
        let g = |threads| {
            run(&MzRunConfig::new(
                MzBenchmark::BtMz,
                MzClass::C,
                16,
                threads,
            ))
            .total_gflops
        };
        let eff8 = g(8) / (4.0 * g(2));
        assert!(eff8 < 0.9, "8-thread efficiency vs 2-thread {eff8}");
    }

    #[test]
    fn threads_rescue_btmz_load_balance_at_256() {
        // Fig. 11: BT-MZ's uneven zones need OpenMP threads for load
        // balance at high CPU counts (256 zones, class C).
        let pure = run(&MzRunConfig::new(MzBenchmark::BtMz, MzClass::C, 256, 1));
        let hybrid = run(&MzRunConfig::new(MzBenchmark::BtMz, MzClass::C, 64, 4));
        assert!(pure.imbalance > 2.0);
        assert!(hybrid.imbalance < 1.2);
        assert!(hybrid.total_gflops > pure.total_gflops);
    }

    #[test]
    fn pinning_matters_for_hybrid_runs() {
        // Fig. 7: SP-MZ class C, 128 CPUs: pinning improves hybrid
        // performance substantially; pure process mode barely moves.
        let mut pinned = MzRunConfig::new(MzBenchmark::SpMz, MzClass::C, 8, 16);
        let mut unpinned = pinned.clone();
        unpinned.pinning = Pinning::Unpinned;
        let tp = run(&pinned).seconds_per_step;
        let tu = run(&unpinned).seconds_per_step;
        assert!(tu > 1.4 * tp, "hybrid unpinned/pinned = {}", tu / tp);
        // Pure process mode.
        pinned.procs = 128;
        pinned.threads = 1;
        unpinned.procs = 128;
        unpinned.threads = 1;
        let tp1 = run(&pinned).seconds_per_step;
        let tu1 = run(&unpinned).seconds_per_step;
        assert!(
            tu1 < 1.15 * tp1,
            "process mode unpinned/pinned = {}",
            tu1 / tp1
        );
    }

    #[test]
    fn spmz_dips_at_768() {
        // Fig. 11: SP-MZ drop at 768 CPUs from load imbalance.
        let cfg = |procs| {
            let mut c = MzRunConfig::new(MzBenchmark::SpMz, MzClass::E, procs, 1);
            c.nodes = 2;
            c
        };
        let per_cpu_512 = run(&cfg(512)).gflops_per_cpu;
        let per_cpu_768 = run(&cfg(768)).gflops_per_cpu;
        assert!(
            per_cpu_768 < 0.95 * per_cpu_512,
            "768={per_cpu_768} 512={per_cpu_512}"
        );
    }

    #[test]
    fn infiniband_close_to_numalink_for_btmz() {
        // Fig. 11 bottom: "The InfiniBand results are only about 7%
        // worse" for BT-MZ (large messages, bandwidth-bound).
        let mk = |inter| {
            let mut c = MzRunConfig::new(MzBenchmark::BtMz, MzClass::E, 512, 2);
            c.nodes = 2;
            c.inter = inter;
            run(&c).total_gflops
        };
        let nl = mk(InterNodeFabric::NumaLink4);
        let ib = mk(InterNodeFabric::InfiniBand);
        let gap = nl / ib;
        assert!((1.0..1.35).contains(&gap), "gap={gap}");
    }

    #[test]
    fn released_mpt_hurts_spmz_on_ib() {
        // §4.6.2: SP-MZ over IB 40% slower with the released MPT at 256
        // CPUs; the beta closes the gap.
        let mk = |mpt| {
            let mut c = MzRunConfig::new(MzBenchmark::SpMz, MzClass::E, 256, 1);
            c.nodes = 2;
            c.inter = InterNodeFabric::InfiniBand;
            c.mpt = mpt;
            run(&c).total_gflops
        };
        let beta = mk(MptVersion::Beta);
        let released = mk(MptVersion::Released);
        assert!(beta > released * 1.05, "beta={beta} released={released}");
    }

    #[test]
    fn boot_cpuset_makes_508_beat_512() {
        // §4.6.2: 512-CPU in-node runs dropped 10-15%; 508 recovers.
        // Class D keeps the runs compute-bound so the derate is
        // visible; BT-MZ's uneven zones bin-pack evenly onto both 254
        // and 256 ranks (SP-MZ's identical zones cannot balance on
        // 254).
        let g512 = run(&MzRunConfig::new(MzBenchmark::BtMz, MzClass::D, 256, 2)).total_gflops;
        let mut c508 = MzRunConfig::new(MzBenchmark::BtMz, MzClass::D, 254, 2);
        c508.nodes = 1;
        let g508 = run(&c508).total_gflops;
        // Per-CPU, the 508 run must be better.
        assert!(g508 / 508.0 > g512 / 512.0 * 1.05);
    }
}
