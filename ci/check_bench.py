#!/usr/bin/env python3
"""Floor-check `BENCH JSON` lines captured from cargo bench output.

CI greps `^BENCH JSON ` lines out of the bench logs into a JSON-lines
file and runs this script over it. Each known bench has an absolute
bound — a floor a speedup must clear, or a ceiling an overhead must
stay under — that never moves with the committed baseline. (Trajectory
regressions relative to the committed baseline are the job of the
`bench-compare` gate; this script is the machine-independent sanity
floor.)

Usage:
    check_bench.py bench.json --require mailbox_ring_512 [more...]

Exits nonzero if a required bench is missing from the file or any
present known bench violates its bound. Unknown benches are reported
but not gated.
"""

import argparse
import json
import sys

# bench name -> (metric, comparison, bound). ">=" is a floor the metric
# must clear; "<" is a ceiling it must stay under.
CHECKS = {
    # Mailbox index fast path vs. the reference HashMap mailbox.
    "mailbox_ring_512": ("speedup", ">=", 1.2),
    # Pair-class cost cache + monomorphized dispatch vs. uncached dyn.
    "engine_ring_2048": ("speedup", ">=", 1.5),
    # Disabled host-telemetry hooks vs. a bare loop over the same jobs.
    "host_obs_overhead": ("overhead_pct", "<", 2.0),
    # Conservative PDES tier at 4 threads vs. the serial engine on the
    # full-Columbia 10,240-rank run (bit-identical results, ≥1.8x wall).
    "pdes_columbia_10240": ("speedup4", ">=", 1.8),
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="JSON-lines file of BENCH JSON records")
    parser.add_argument(
        "--require",
        nargs="+",
        default=[],
        metavar="BENCH",
        help="bench names that must be present in the file",
    )
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        rows = [json.loads(line) for line in f if line.strip()]
    if not rows:
        print("no BENCH JSON lines captured", file=sys.stderr)
        return 1

    by_name = {}
    for row in rows:
        by_name[row["bench"]] = row  # last sample of a bench wins

    failures = []
    for name in args.require:
        if name not in by_name:
            failures.append(f"required bench {name!r} missing from {args.bench_json}")

    for name, row in by_name.items():
        check = CHECKS.get(name)
        if check is None:
            print(f"note   {name}: no absolute bound registered (not gated here)")
            continue
        metric, op, bound = check
        value = row.get(metric)
        if not isinstance(value, (int, float)):
            failures.append(f"{name}: metric {metric!r} missing or non-numeric")
            continue
        ok = value >= bound if op == ">=" else value < bound
        detail = ", ".join(
            f"{k} {v}" for k, v in row.items() if k not in ("bench", metric)
        )
        verdict = "ok" if ok else "FAIL"
        print(f"{verdict:6} {name}: {metric} {value} (need {op} {bound}; {detail})")
        if not ok:
            failures.append(f"{name}: {metric} {value} violates {op} {bound}")

    for failure in failures:
        print(f"BENCH CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
