#!/usr/bin/env bash
# Deliberate-typo smoke test for the spec frontend: a spec with a
# misspelled key must be rejected (exit 2) with a positioned
# unknown-key diagnostic whose suggestion names the intended key.
# Proves the CLI surfaces SpecError the way the corpus pins it.
#
# Usage: ci/spec_typo_smoke.sh [path-to-repro]
set -euo pipefail

repro="${1:-./target/release/repro}"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

sed 's/^row = /rwo = /' specs/dgemm-stream.toml > "$dir/typo.toml"
grep -q '^rwo = ' "$dir/typo.toml" || {
    echo "typo injection produced no 'rwo' key; did the spec change shape?" >&2
    exit 1
}

set +e
out="$("$repro" --spec "$dir/typo.toml" 2>&1)"
status=$?
set -e

if [ "$status" -ne 2 ]; then
    echo "expected exit 2 for a malformed spec, got $status" >&2
    echo "output: $out" >&2
    exit 1
fi
echo "$out" | grep -F "unknown key 'rwo'" > /dev/null || {
    echo "diagnostic does not name the offending key: $out" >&2
    exit 1
}
echo "$out" | grep -F "did you mean 'row'?" > /dev/null || {
    echo "diagnostic carries no suggestion: $out" >&2
    exit 1
}
echo "$out" | grep -E 'typo\.toml:[0-9]+:[0-9]+:' > /dev/null || {
    echo "diagnostic carries no file:line:col position: $out" >&2
    exit 1
}
echo "typo smoke passed: $out"
