#!/usr/bin/env python3
"""Copy a bench-manifest directory with every primary metric worsened.

CI's regression-gate smoke test runs this over the freshly produced
`bench-manifests/` directory and then asserts that `bench-compare`
exits nonzero on the result — proving the gate actually fires, not
just that it passes on good data.

The primary metric is pushed hard in the bad direction (x0.25 when
higher is better, x4 when lower is better) so the injected change
crosses any sane threshold regardless of where the live measurement
landed relative to the committed baseline.

Usage:
    inject_regression.py <src_dir> <dst_dir> [--factor 0.25]
"""

import argparse
import json
import pathlib
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("src_dir", type=pathlib.Path)
    parser.add_argument("dst_dir", type=pathlib.Path)
    parser.add_argument(
        "--factor",
        type=float,
        default=0.25,
        help="multiplier applied to higher-is-better primaries "
        "(its reciprocal is applied to lower-is-better ones)",
    )
    args = parser.parse_args()

    manifests = sorted(args.src_dir.glob("BENCH_*.json"))
    if not manifests:
        print(f"no BENCH_*.json manifests in {args.src_dir}", file=sys.stderr)
        return 1

    args.dst_dir.mkdir(parents=True, exist_ok=True)
    for path in manifests:
        doc = json.loads(path.read_text(encoding="utf-8"))
        primary = doc["primary"]
        factor = args.factor if doc["higher_is_better"] else 1.0 / args.factor
        before = doc["metrics"][primary]
        doc["metrics"][primary] = before * factor
        (args.dst_dir / path.name).write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"{path.name}: {primary} {before} -> {doc['metrics'][primary]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
